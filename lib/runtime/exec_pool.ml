module Ch = Msmr_platform.Channel
module Lf = Msmr_platform.Lf_queue
module Thread_state = Msmr_platform.Thread_state
module Waitstats = Msmr_platform.Waitstats
module Backoff = Msmr_platform.Backoff
module Counter = Msmr_platform.Rate_meter.Counter

(* Hash-shard variant: one queue per executor, a key's lane IS its
   executor. This is PR 6's pool, kept verbatim behind [steal = false]
   (and as the only option on the mutex path, which the goldens pin). *)
type 'a shard = { exec_qs : 'a Ch.t array }

(* Work-stealing variant. Naively stealing *requests* from a sibling's
   queue would break the ordering contract (two same-key requests could
   run concurrently on two executors), so stealing is done at lane
   granularity:

   - Requests are sharded over [n_lanes >> n_exec] SPSC lane rings; the
     scheduler is the only producer of every lane.
   - A lane with work is represented by a unique *token* (the lane id)
     sitting in exactly one executor's MPMC token ring. The token is
     minted when [lane_pending] goes 0 -> 1 and dies when the draining
     executor brings it back to 0; the fetch-and-add transitions make
     mint/retire atomic, so a lane never has two tokens.
   - Only the token holder pops the lane. Executors steal *tokens* —
     half of a victim's ring — so a hot shard's lanes spread over idle
     siblings while each lane (hence each key) stays single-consumer,
     in decide order.

   Items are pushed to the lane ring *before* the [lane_pending]
   increment, so a freshly minted or re-checked token always finds its
   items published. *)
type 'a steal_st = {
  lanes : 'a Lf.Spsc.t array;
  lane_pending : int Atomic.t array;
  token_qs : int Lf.Mpmc.t array; (* lane ids; one ring per executor *)
  work_mu : Mutex.t;
  work_cv : Condition.t;
  work_sleepers : int Atomic.t;
  closed : bool Atomic.t;
  seeds : int array; (* per-executor LCG state for victim choice *)
}

type 'a impl = Shard of 'a shard | Steal of 'a steal_st

type 'a t = {
  n_exec : int;
  n_lanes : int;
  impl : 'a impl;
  (* Quiescence barrier state: dispatched-but-unfinished requests. *)
  pending : int Atomic.t;
  mu : Mutex.t;
  cv : Condition.t;
  dispatched : Counter.t;
  barriers : Counter.t;
  steals : Counter.t;
  steal_fails : Counter.t;
  mutable rr : int; (* round-robin lane cursor; scheduler-private *)
}

(* Lanes per executor in steal mode: enough that a hot executor's lanes
   can be split among siblings, few enough that the token rings and the
   scheduler's routing table stay tiny. *)
let lanes_per_exec = 8

let lane_capacity = 1024

let create ~lockfree ~steal ~n_exec () =
  if n_exec < 1 then invalid_arg "Exec_pool.create: n_exec < 1";
  (* Stealing rides the lock-free rings; on the pinned mutex path (and
     with a single executor, where there is nobody to steal from) it
     degrades to hash-sharding. *)
  let steal = steal && lockfree && n_exec > 1 in
  let n_lanes = if steal then lanes_per_exec * n_exec else n_exec in
  let impl =
    if steal then
      Steal
        {
          lanes = Array.init n_lanes (fun _ ->
              Lf.Spsc.create ~capacity:lane_capacity);
          lane_pending = Array.init n_lanes (fun _ -> Atomic.make 0);
          (* Every live token could in principle sit in one ring. *)
          token_qs = Array.init n_exec (fun _ ->
              Lf.Mpmc.create ~capacity:n_lanes);
          work_mu = Mutex.create ();
          work_cv = Condition.create ();
          work_sleepers = Atomic.make 0;
          closed = Atomic.make false;
          seeds = Array.init n_exec (fun i -> (i * 2654435761) lor 1);
        }
    else
      Shard
        {
          exec_qs = Array.init n_exec (fun _ ->
              Ch.create ~lockfree ~kind:Ch.Spsc ~capacity:lane_capacity);
        }
  in
  {
    n_exec;
    n_lanes;
    impl;
    pending = Atomic.make 0;
    mu = Mutex.create ();
    cv = Condition.create ();
    dispatched = Counter.create ();
    barriers = Counter.create ();
    steals = Counter.create ();
    steal_fails = Counter.create ();
    rr = 0;
  }

let n_exec t = t.n_exec
let lanes t = t.n_lanes
let stealing t = match t.impl with Steal _ -> true | Shard _ -> false
let dispatched t = Counter.get t.dispatched
let barriers t = Counter.get t.barriers
let steals t = Counter.get t.steals
let steal_fails t = Counter.get t.steal_fails

let depth t =
  match t.impl with
  | Shard s -> Array.fold_left (fun acc q -> acc + Ch.length q) 0 s.exec_qs
  | Steal s -> Array.fold_left (fun acc l -> acc + Lf.Spsc.length l) 0 s.lanes

(* Executor-side completion: the last in-flight request wakes the
   scheduler if it is blocked in a barrier. The broadcast takes the
   mutex, and the scheduler re-checks the counter under it, so the
   wake-up cannot be lost. *)
let complete t =
  if Atomic.fetch_and_add t.pending (-1) = 1 then begin
    Mutex.lock t.mu;
    Condition.broadcast t.cv;
    Mutex.unlock t.mu
  end

(* Quiescence barrier: wait until every dispatched request has executed.
   Run only from the scheduler thread, which is also the only
   dispatcher, so the counter cannot grow while we wait. *)
let quiesce t st =
  Counter.incr t.barriers;
  if Atomic.get t.pending > 0 then
    Thread_state.enter st Thread_state.Waiting (fun () ->
        Mutex.lock t.mu;
        while Atomic.get t.pending > 0 do
          Condition.wait t.cv t.mu
        done;
        Mutex.unlock t.mu)

let wake_executors s =
  if Atomic.get s.work_sleepers > 0 then begin
    Mutex.lock s.work_mu;
    Condition.broadcast s.work_cv;
    Mutex.unlock s.work_mu
  end

(* Mint the lane's token into its home executor's ring. The ring is
   sized for every live token, so the push cannot fail. *)
let mint_token s ~n_exec lane =
  ignore (Lf.Mpmc.try_push s.token_qs.(lane mod n_exec) lane);
  wake_executors s

let send ?st t ~lane v =
  Atomic.incr t.pending;
  Counter.incr t.dispatched;
  match t.impl with
  | Shard s -> (
      match Ch.put ?st s.exec_qs.(lane) v with
      | () -> ()
      | exception Ch.Closed ->
        (* Shutdown mid-dispatch: the request is dropped (as the serial
           loop drops queued decisions), but the counter must not leak. *)
        ignore (Atomic.fetch_and_add t.pending (-1)))
  | Steal s ->
    if Atomic.get s.closed then ignore (Atomic.fetch_and_add t.pending (-1))
    else begin
      let bo = Backoff.create () in
      let rec push () =
        if Lf.Spsc.try_push s.lanes.(lane) v then begin
          (* 0 -> 1: the lane just became non-empty; give it a token. *)
          if Atomic.fetch_and_add s.lane_pending.(lane) 1 = 0 then
            mint_token s ~n_exec:t.n_exec lane
        end
        else if Atomic.get s.closed then
          ignore (Atomic.fetch_and_add t.pending (-1))
        else begin
          (* Lane ring full: its token is live somewhere, so an executor
             is (or will be) draining it — back off and retry. *)
          Waitstats.note_spin ();
          Backoff.once ?st bo;
          push ()
        end
      in
      push ()
    end

let send_rr ?st t v =
  t.rr <- (t.rr + 1) mod t.n_lanes;
  send ?st t ~lane:t.rr v

(* --- executor bodies ------------------------------------------------ *)

let run_exec t exec v =
  match exec v with
  | () -> complete t
  | exception e ->
    (* Never leave the barrier counter stuck. *)
    complete t;
    raise e

let shard_loop t s ~idx ~exec ~st =
  let q = s.exec_qs.(idx) in
  let continue = ref true in
  while !continue do
    match Ch.take ~st q with
    | v -> run_exec t exec v
    | exception Ch.Closed -> continue := false
  done

(* How many requests one token grant may drain before the lane is
   re-queued behind the executor's other tokens (keeps one hot lane from
   starving the rest of the ring). *)
let drain_budget = 64

let steal_loop t s ~idx ~exec ~st =
  let my_tokens = s.token_qs.(idx) in
  (* Drain [lane] while holding its token. Returns with the token either
     retired (lane empty) or re-queued (budget exhausted). *)
  let drain lane =
    let pend = s.lane_pending.(lane) in
    let rec go budget =
      match Lf.Spsc.try_pop s.lanes.(lane) with
      | None ->
        (* While [lane_pending] > 0 the token guarantees published items
           (pushes precede increments and only we decrement), so a miss
           should mean the lane is drained; re-check defensively. *)
        if Atomic.get pend > 0 then begin
          Thread.yield ();
          go budget
        end
      | Some v ->
        (match exec v with
         | () -> ()
         | exception e ->
           (* Dying executor: unwedge both counters before propagating
              (the worker failure takes the replica down anyway). *)
           ignore (Atomic.fetch_and_add pend (-1));
           complete t;
           raise e);
        (* Order matters: retire the lane slot only after the request
           finished, so a successor token (minted on the next 0 -> 1)
           can never run a same-lane request concurrently with us. *)
        let rem = Atomic.fetch_and_add pend (-1) - 1 in
        complete t;
        if rem > 0 then
          if budget > 0 then go (budget - 1)
          else ignore (Lf.Mpmc.try_push my_tokens lane)
    in
    go drain_budget
  in
  (* Steal up to half of some victim's tokens: keep one to drain, move
     the rest into our own ring (and wake siblings — we just became a
     victim worth robbing). *)
  let try_steal () =
    s.seeds.(idx) <- (s.seeds.(idx) * 25214903917 + 11) land max_int;
    let start = s.seeds.(idx) mod t.n_exec in
    let found = ref None in
    for off = 0 to t.n_exec - 1 do
      if !found = None then begin
        let v = (start + off) mod t.n_exec in
        if v <> idx then begin
          let k = Lf.Mpmc.length s.token_qs.(v) in
          if k > 0 then begin
            let want = max 1 ((k + 1) / 2) in
            let got = ref [] in
            for _ = 1 to want do
              match Lf.Mpmc.try_pop s.token_qs.(v) with
              | Some l -> got := l :: !got
              | None -> ()
            done;
            match List.rev !got with
            | [] -> ()
            | first :: rest ->
              List.iter
                (fun l -> ignore (Lf.Mpmc.try_push my_tokens l))
                rest;
              if rest <> [] then wake_executors s;
              Counter.incr t.steals;
              found := Some first
          end
        end
      end
    done;
    if !found = None then Counter.incr t.steal_fails;
    !found
  in
  let next_token () =
    match Lf.Mpmc.try_pop my_tokens with
    | Some lane -> Some lane
    | None -> try_steal ()
  in
  let continue = ref true in
  while !continue do
    match next_token () with
    | Some lane -> drain lane
    | None ->
      if Atomic.get s.closed then continue := false
      else begin
        (* Spin briefly, then park. Parking re-checks only our own ring
           under the mutex: any token minted or re-queued after we bump
           [work_sleepers] broadcasts, and one minted before is either in
           our ring (seen by the re-check) or owned by a sibling. *)
        let rec spin n =
          if n = 0 then None
          else begin
            Waitstats.note_spin ();
            Thread.yield ();
            match next_token () with
            | Some lane -> Some lane
            | None -> spin (n - 1)
          end
        in
        match spin 16 with
        | Some lane -> drain lane
        | None ->
          if Atomic.get s.closed then continue := false
          else begin
            Atomic.incr s.work_sleepers;
            Mutex.lock s.work_mu;
            Fun.protect
              ~finally:(fun () ->
                Mutex.unlock s.work_mu;
                Atomic.decr s.work_sleepers)
              (fun () ->
                while
                  (not (Atomic.get s.closed))
                  && Lf.Mpmc.length my_tokens = 0
                do
                  Waitstats.note_park ();
                  Thread_state.enter st Thread_state.Waiting (fun () ->
                      Condition.wait s.work_cv s.work_mu)
                done)
          end
      end
  done

let executor_loop t ~idx ~exec ~st =
  match t.impl with
  | Shard s -> shard_loop t s ~idx ~exec ~st
  | Steal s -> steal_loop t s ~idx ~exec ~st

let close t =
  match t.impl with
  | Shard s -> Array.iter Ch.close s.exec_qs
  | Steal s ->
    Atomic.set s.closed true;
    Mutex.lock s.work_mu;
    Condition.broadcast s.work_cv;
    Mutex.unlock s.work_mu
