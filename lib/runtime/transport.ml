module Bq = Msmr_platform.Bounded_queue

type link = {
  send_bytes : bytes -> unit;
  send_many : bytes list -> unit;
      (* coalesced send: one syscall for the whole run where the
         transport supports it (TCP uses Frame.write_many) *)
  recv_bytes : unit -> bytes option;
  close : unit -> unit;
}

module Hub = struct
  type pipe = {
    mutable queue : bytes Bq.t;
        (* replaced wholesale by [renew] when the destination replica
           restarts — senders read the field per call, so they pick up
           the fresh queue; a reader blocked on the old (closed) queue
           wakes with [Closed] and exits *)
    mutable drop_rate : float;
    mutable severed : bool;        (* fault injection: link cut one-way *)
    rng : Random.State.t;
  }

  type t = {
    n : int;
    capacity : int;
    pipes : pipe array array;      (* pipes.(src).(dst) *)
    cut_nodes : bool array;
    sent : Msmr_platform.Rate_meter.Counter.t;
  }

  let create ?(capacity = 4096) ~n () =
    let t =
      { n;
        capacity;
        pipes =
          Array.init n (fun src ->
              Array.init n (fun dst ->
                  { queue = Bq.create ~capacity;
                    drop_rate = 0.;
                    severed = false;
                    rng = Random.State.make [| (src * 131) + dst |] }));
        cut_nodes = Array.make n false;
        sent = Msmr_platform.Rate_meter.Counter.create () }
    in
    (* Replace semantics: a later hub (fresh cluster) takes over the
       series. *)
    Msmr_obs.Metrics.gauge ~labels:[ ("mode", "live") ]
      "msmr_hub_frames_sent" (fun () ->
          float_of_int (Msmr_platform.Rate_meter.Counter.get t.sent));
    t

  let link t ~me ~peer =
    if me = peer then invalid_arg "Hub.link: self link";
    let out = t.pipes.(me).(peer) and inc = t.pipes.(peer).(me) in
    let send_bytes b =
      Msmr_platform.Rate_meter.Counter.incr t.sent;
      if t.cut_nodes.(me) || t.cut_nodes.(peer) || out.severed then ()
      else if out.drop_rate > 0.
              && Random.State.float out.rng 1.0 < out.drop_rate then ()
      else
        (* A closed queue means shutdown: drop silently like a broken
           TCP connection would. *)
        try Bq.put out.queue b with Bq.Closed -> ()
    in
    { send_bytes;
      send_many = (fun bs -> List.iter send_bytes bs);
      recv_bytes =
        (fun () ->
           (* A cut only blocks new sends; frames already queued were "in
              flight" and still arrive. *)
           match Bq.take inc.queue with
           | b -> Some b
           | exception Bq.Closed -> None);
      close = (fun () -> Bq.close inc.queue) }

  let set_drop_rate t ~src ~dst rate = t.pipes.(src).(dst).drop_rate <- rate
  let cut t node = t.cut_nodes.(node) <- true
  let heal t node = t.cut_nodes.(node) <- false
  let sever t ~src ~dst = t.pipes.(src).(dst).severed <- true
  let heal_link t ~src ~dst = t.pipes.(src).(dst).severed <- false

  (* Give a restarting replica fresh incoming queues: the dying replica
     closed pipes.(p).(node) (its inbound side), which peers see only as
     silently-dropped sends. Only the inbound direction is replaced — a
     peer's reader may be parked inside [Bq.take] on pipes.(node).(p) and
     would never observe a swap. *)
  let renew t node =
    for p = 0 to t.n - 1 do
      if p <> node then
        t.pipes.(p).(node).queue <- Bq.create ~capacity:t.capacity
    done

  let close t =
    Array.iter (fun row -> Array.iter (fun p -> Bq.close p.queue) row) t.pipes

  let frames_sent t = Msmr_platform.Rate_meter.Counter.get t.sent
end

module Tcp = struct
  (* A write to a peer-closed or shut-down socket must surface as EPIPE,
     not kill the process. Done once, on first TCP use. *)
  let ignore_sigpipe =
    lazy
      (if not Sys.win32 then
         try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
         with Invalid_argument _ | Sys_error _ -> ())

  let link_of_fd fd =
    Lazy.force ignore_sigpipe;
    let closed = Atomic.make false in
    { send_bytes =
        (fun b ->
           if not (Atomic.get closed) then
             try Msmr_wire.Frame.write fd b
             with Unix.Unix_error _ -> Atomic.set closed true);
      send_many =
        (fun bs ->
           if not (Atomic.get closed) then
             try Msmr_wire.Frame.write_many fd bs
             with Unix.Unix_error _ -> Atomic.set closed true);
      recv_bytes =
        (fun () ->
           if Atomic.get closed then None
           else
             try Msmr_wire.Frame.read fd with
             | End_of_file | Unix.Unix_error _ ->
               Atomic.set closed true;
               None);
      close =
        (fun () ->
           if not (Atomic.exchange closed true) then begin
             (* [shutdown] first: unlike [close], it wakes a thread
                blocked in [read]/[write] on this fd (Linux semantics),
                which is what lets Replica.stop join its ReplicaIO
                threads. *)
             (try Unix.shutdown fd Unix.SHUTDOWN_ALL
              with Unix.Unix_error _ -> ());
             try Unix.close fd with Unix.Unix_error _ -> ()
           end) }

  let connect_link addr =
    let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
    (try Unix.connect fd addr
     with e ->
       Unix.close fd;
       raise e);
    Unix.setsockopt fd Unix.TCP_NODELAY true;
    link_of_fd fd
end
