(** Self-healing replica-to-replica TCP mesh.

    Every replica listens on its own address; for each pair the
    higher-id replica dials the lower-id one and identifies itself with
    a one-frame hello carrying its node id and consensus group id.
    {!create} blocks until the whole mesh is up once (peers may start in
    any order).

    In a multi-group deployment each group runs its own mesh on its own
    address set; the group tag in the hello makes a cross-wired address
    map fail closed (the listener drops a dialer from another group)
    instead of silently mixing two groups' Paxos streams. Hellos without
    the tag — the pre-multi-group frame — are read as group 0, so
    single-group deployments interoperate across versions.

    Unlike a one-shot connect, the mesh stays alive for the process
    lifetime: when an established link dies mid-run, the dialing side
    redials with capped exponential backoff plus per-pair jitter, the
    listening side accepts the replacement, and the {!links} facades
    splice the new connection in transparently — senders drop frames
    while the link is down (the retransmitter recovers them), readers
    block until the link returns. Re-establishments are counted in
    {!reconnects}, which is what [msmr_replica_reconnect_total] reports
    when wired through [Replica.create ~reconnects]. *)

type t

val create :
  ?connect_timeout_s:float ->
  ?gid:int ->
  me:Msmr_consensus.Types.node_id ->
  addrs:(Msmr_consensus.Types.node_id * Unix.sockaddr) list ->
  unit ->
  t
(** [addrs] must contain every node including [me] (whose address is the
    one listened on). [gid] (default [0]) tags this mesh's hellos with
    its consensus group and rejects dialers from any other group.
    @raise Failure when the initial mesh cannot be completed within
    [connect_timeout_s] (default 30 s). *)

val links : t -> (Msmr_consensus.Types.node_id * Transport.link) list
(** One persistent link facade per peer, for [Replica.create]. Closing a
    facade permanently retires that peer's slot (no further redials). *)

val reconnects : t -> int
(** Links re-established after their initial connection — the mesh's
    contribution to [msmr_replica_reconnect_total]. *)

val add_peer :
  t -> peer:Msmr_consensus.Types.node_id -> addr:Unix.sockaddr -> Transport.link
(** Online membership change: splice [peer]'s slot into the mesh mid-run
    (a joiner), or reopen it after {!remove_peer} (re-admission). Returns
    the peer's link facade; the connection itself is established
    asynchronously by the dialer/acceptor, with sends dropping until it
    is up (retransmission recovers them). Idempotent for an
    already-open peer. *)

val remove_peer : t -> peer:Msmr_consensus.Types.node_id -> unit
(** Retire a decommissioned peer's slot: close its connection, stop
    redialing, and make its facade's reads return [None]. The slot can
    be reopened later with {!add_peer}. No-op for an unknown peer. *)

val close : t -> unit
(** Stop the acceptor and dialer threads and close every connection.
    Idempotent. *)

val establish :
  ?connect_timeout_s:float ->
  ?gid:int ->
  me:Msmr_consensus.Types.node_id ->
  addrs:(Msmr_consensus.Types.node_id * Unix.sockaddr) list ->
  unit ->
  (Msmr_consensus.Types.node_id * Transport.link) list
(** Compatibility shim: [links (create ...)]. The mesh handle is not
    returned, so it lives (and keeps reconnecting) until the process
    exits. *)
