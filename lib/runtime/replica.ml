module Bq = Msmr_platform.Channel
module Waitstats = Msmr_platform.Waitstats
module Dq = Msmr_platform.Delay_queue
module Worker = Msmr_platform.Worker
module Thread_state = Msmr_platform.Thread_state
module Mclock = Msmr_platform.Mclock
module Counter = Msmr_platform.Rate_meter.Counter
module Cmap = Msmr_platform.Concurrent_map
module Client_msg = Msmr_wire.Client_msg
open Msmr_consensus

let log_src = Logs.Src.create "msmr.replica" ~doc:"Replica runtime"

module Log_ = (val Logs.src_log log_src : Logs.LOG)

type event =
  | Peer_msg of { from : Types.node_id; msg : Msg.t }
  | Suspect
  | Snapshot_taken of { next_iid : Types.iid; state : bytes }
  | Proposal_ready
      (** Batcher signal: the ProposalQueue has something for the
          Protocol thread (keeps the event loop fully blocking). *)
  | Housekeeping_tick  (** periodic catch-up check, from the FD thread *)
  | Reconfig_request of Membership.t
      (** Administrative membership change: hand the target epoch to the
          engine-owning thread, which orders it through the log
          ({!Paxos.propose_reconfig}). Rejected requests (not leader,
          another reconfig in flight, ...) are dropped — callers poll the
          adopted epoch and retry. *)

type decision =
  | Exec of { iid : Types.iid; value : Value.t }
  | Install of { state : bytes }
  | Read_exec of { read : Client_msg.read; reply_to : bytes -> unit }
      (** Lease read riding the DecisionQueue (DESIGN.md section 15): FIFO
          behind every decided instance enqueued before it, so by the time
          the ServiceManager pops it the apply frontier has reached the
          lease-covered commit point — that queue position {e is} the
          linearizability wait. Lease validity is checked at pop time. *)
  | Spec of { req : Client_msg.request; conflict : Service.conflict }
      (** Speculative pre-dispatch (DESIGN.md section 16): pushed by the
          ClientIO ingress hook the moment a fresh request arrives at the
          leader, before the request enters the Batcher. Queue FIFO
          therefore places it strictly before the request's own [Exec],
          which is what makes the scheduler's ledger admission race-free:
          the prediction is always on file when the decide arrives. *)
  | Spec_flush
      (** View changed: every open speculation predicted the {e old}
          leader's log-append order, so abort them all. *)

type durability =
  | Ephemeral
  | Durable of { dir : string; sync : Msmr_storage.Wal.sync_policy }

type rtx_entry = {
  r_dest : Types.node_id list;
  r_msg : Msg.t;
  r_cancelled : bool Atomic.t;
  r_t0 : int64;
      (* when the retransmission was first scheduled; for the leader's
         Rtx_accept this is the propose time, so cancel time minus it is
         the commit latency the autotune controller feeds on *)
}

(* StableStorage pipeline (Durable mode). The Protocol thread never
   touches the disk: it assigns each persisted event an LSN and puts it
   on the (bounded) log queue, and tags every durability-dependent send
   with the LSN it must wait for. The StableStorage thread drains the
   queue in bursts, writes each burst through one
   [Replica_store.log_batch] — under [Sync_every_write] that is one
   fsync for the whole burst (group commit) — and only then releases
   the gated messages whose LSN the watermark has passed. The queue is
   FIFO and a message is always enqueued after its log event, so
   release order equals log order. *)
type ss_item =
  | Ss_log of Msmr_storage.Replica_store.event
  | Ss_release of {
      lsn : int;  (** release once LSNs <= this are on stable storage *)
      dest : Types.node_id list;
      msg : Msg.t;
      enq_ns : int64;
    }

type stable = {
  log_q : ss_item Bq.t;
  ss_lsn : int Atomic.t;  (* last LSN assigned by the Protocol thread *)
  ss_stall : bool Atomic.t;  (* test hook: park the pipeline *)
  ss_hold : Msmr_platform.Histogram.t;  (* gated-send hold time, seconds *)
}

(* Parallel ServiceManager (executor_threads > 1): a scheduler thread
   consumes the DecisionQueue in decide order and routes each request to
   a lane of the {!Exec_pool} by hashing its conflict key, so commands on
   the same key always land on the same lane and keep their decide order,
   while commands on different keys run concurrently. With [Config.steal]
   the pool runs many lanes over the executors and idle executors steal
   lane tokens from busy siblings; without it a lane is an executor
   (static hash-sharding). Global / multi-lane commands and snapshots
   first quiesce the pool. *)
(* Work items flowing through the executor lanes. [W_exec] is the
   ordered path; the other three belong to the speculative path
   (Config.speculate, DESIGN.md section 16). All items for one conflict
   key ride the same lane, so the per-lane FIFO serialises a key's
   speculative execution, its confirm-or-abort, and any ordered
   re-execution — no per-frame state machine is needed. *)
type work =
  | W_exec of Client_msg.request
  | W_spec of Spec_ledger.frame * Client_msg.request
      (* execute optimistically via [Service.execute_undo]; stage the
         reply invisibly and park the undo closure in the frame *)
  | W_confirm of Spec_ledger.frame * Client_msg.request
      (* decide order matched the prediction: promote the staged reply
         and deliver it (the request rides along only for the defensive
         ordered-re-execution fallback) *)
  | W_abort of Spec_ledger.frame
      (* prediction failed: run the undo, drop the staged reply *)

(* Speculation runtime (Some iff cfg.speculate and the service implements
   [execute_undo]). The ledger is scheduler-private; the counters and
   lead accumulators are written by executors and read by metrics. *)
type spec_ctx = {
  ledger : Spec_ledger.t;
  spec_dispatch : Counter.t;  (* frames admitted + pre-dispatched *)
  spec_confirm : Counter.t;   (* frames whose prediction held *)
  spec_abort : Counter.t;     (* frames rolled back *)
  spec_requeue : Counter.t;   (* decided requests re-executed ordered
                                 after a mispredict on their key *)
  lead_ns_sum : int Atomic.t; (* sum of confirm - dispatch, ns *)
  lead_n : int Atomic.t;
}

type exec_ctx = {
  pool : work Exec_pool.t;
  exec_frontier : (int, int) Hashtbl.t;
      (* client_id -> newest seq dispatched, maintained by the scheduler
         in decide order. At-most-once must be decided here, not on the
         executors: a client's commands on different keys run on
         different executors, so an executor-side newest-seq check could
         race with a later command of the same client finishing first
         and wrongly suppress a fresh one. Scheduler-private. *)
  conflict_cache : (int, int * Service.conflict) Cmap.t;
      (* client_id -> (seq, conflict class), written once per fresh
         request by the ClientIO ingress hook so the spine classifies
         each request exactly once; the scheduler reads it at dispatch
         and falls back to classifying only on a miss (cache overwritten
         by a newer request of the same client, or ingress raced). *)
  spec : spec_ctx option;
}

(* Lease runtime state (Config.lease_enabled). The pure {!Lease} policy
   is Protocol-thread private — every mutation happens while handling a
   dispatcher event; what other threads need is published through
   single-word atomics, same discipline as [am_leader]/[view_now]:
   [lease_until] for the ServiceManager's serve/refuse check, the
   heartbeat frontier pair for follower freshness. *)
type lease_ctx = {
  lease : Lease.t;
  lease_until : int Atomic.t;
      (* holder-side expiry, local monotonic ns; 0 = not held. Zeroed on
         every view change (conservative invalidation). *)
  hb_frontier : int Atomic.t;
      (* leader's first_undecided carried by its last Heartbeat *)
  hb_recv_ns : int Atomic.t;   (* local receipt time of that Heartbeat *)
  lease_renewals : Counter.t;
}

type t = {
  cfg : Config.t;
  me : Types.node_id;
  gid : int option;
      (* consensus group this replica orders for (multi-group Paxos);
         [None] = classic single-group deployment. Group [g] bootstraps
         at view [g], so node [g mod n] leads it, and the group id
         labels this replica's metrics. *)
  service : Service.t;
  (* Queues (Figure 3). *)
  dispatcher_q : event Bq.t;
  proposal_q : Batch.t Bq.t;
  request_q : Client_msg.request Bq.t;
  decision_q : decision Bq.t;
  send_qs : Msg.t Bq.t array;           (* one per node id; own slot unused *)
  proxy_q : (Types.node_id list * Msg.t) Bq.t option;
      (* compartmentalized fan-out (proxy_leaders > 0): multi-destination
         sends leave the Protocol thread as one enqueue; the ProxyLeader
         threads expand them into the per-peer send queues *)
  rtx_dq : rtx_entry Dq.t;
  (* Modules. *)
  links : (Types.node_id * Transport.link) list;
  store : Msmr_storage.Replica_store.t option;
  stable : stable option;   (* Some iff [store] is Some *)
  recovered : Msmr_storage.Replica_store.recovered option;
  reply_cache : Reply_cache.t;
  mutable client_io : Client_io.t option;
  exec_pool : exec_ctx option;   (* None => serial ServiceManager *)
  lease_ctx : lease_ctx option;  (* Some iff cfg.lease_enabled *)
  fd : Failure_detector.t;
  (* Shared introspection state (single-word, lock-free). *)
  leader_now : int Atomic.t;
  view_now : int Atomic.t;
  am_leader : bool Atomic.t;
  executed : Counter.t;
  decided : Counter.t;
  send_q_drops : Counter.t;
  sender_flushes : Counter.t;   (* coalesced sender-drain passes *)
  proxy_fanout : Counter.t;     (* per-destination expansions by ProxyLeaders *)
  view_changes : Counter.t;     (* views installed after view 0 *)
  suspects : Counter.t;         (* local failure-detector verdicts acted on *)
  (* Read fast path accounting + follower freshness (lease mode). *)
  reads_served : Counter.t;
  reads_rejected : Counter.t;
  stale_served : Counter.t;
  stale_rejected : Counter.t;
  (* Membership (online reconfiguration, DESIGN.md section 17). The
     Protocol thread adopts epochs at execute time and publishes them
     here; readers (metrics, lease/read fencing, Cluster drivers) are
     lock-free. [configs_now] mirrors the engine's membership history
     (newest first) for checkpoints. *)
  membership_now : Membership.t Atomic.t;
  configs_now : (Types.iid * Membership.t) list Atomic.t;
  reconfigs_applied : Counter.t;
  snapshot_installs : Counter.t;
  applied_iid : int Atomic.t;
      (* apply frontier: next iid the ServiceManager has NOT yet applied;
         written by the SM/scheduler thread, read by stale-read checks *)
  last_apply_ns : int Atomic.t; (* when the SM last applied a decision *)
  reconnects : unit -> int;
      (* transport-level link re-establishments (Tcp_mesh); [fun () -> 0]
         for transports without reconnection *)
  running : bool Atomic.t;
  mutable threads : Worker.t list;
  window_now : int Atomic.t;
  first_undecided_now : int Atomic.t;
  (* Autotune (Config.auto_tune): tuned values published by the Protocol
     thread's controller tick, read lock-free by the Batcher threads
     (tuned_bsz) and by metrics. The engine's window is retuned directly
     on the Protocol thread via [Paxos.set_window]. *)
  tuned_bsz : int Atomic.t;
  tuned_wnd : int Atomic.t;
  batchers : Batcher.t array;
  (* Commit-latency accumulators for the current controller epoch.
     Protocol-thread private (written in protocol_apply, read/reset by
     the controller tick on the same thread) — no synchronisation. *)
  mutable tune_lat_sum : float;
  mutable tune_lat_n : int;
}

let me t = t.me
let tuned_now t = (Atomic.get t.tuned_bsz, Atomic.get t.tuned_wnd)
let is_leader t = Atomic.get t.am_leader
let current_view t = Atomic.get t.view_now
let executed_count t = Counter.get t.executed
let decided_count t = Counter.get t.decided
let view_changes_count t = Counter.get t.view_changes
let suspects_count t = Counter.get t.suspects
let reconnects_count t = t.reconnects ()
let proxy_fanout_count t = Counter.get t.proxy_fanout
let reads_served_count t = Counter.get t.reads_served
let reads_rejected_count t = Counter.get t.reads_rejected
let stale_reads_served_count t = Counter.get t.stale_served
let stale_reads_rejected_count t = Counter.get t.stale_rejected
let membership t = Atomic.get t.membership_now
let is_member t = Membership.is_member (membership t) t.me
let reconfigs_applied_count t = Counter.get t.reconfigs_applied
let snapshot_installs_count t = Counter.get t.snapshot_installs
let first_undecided t = Atomic.get t.first_undecided_now

let request_reconfig t m =
  try Bq.put t.dispatcher_q (Reconfig_request m) with Bq.Closed -> ()

let spec_ctx_of t =
  match t.exec_pool with
  | Some { spec = Some sc; _ } -> Some sc
  | Some { spec = None; _ } | None -> None

let spec_counter t f =
  match spec_ctx_of t with Some sc -> Counter.get (f sc) | None -> 0

let spec_dispatched_count t = spec_counter t (fun sc -> sc.spec_dispatch)
let spec_confirmed_count t = spec_counter t (fun sc -> sc.spec_confirm)
let spec_aborted_count t = spec_counter t (fun sc -> sc.spec_abort)
let spec_requeued_count t = spec_counter t (fun sc -> sc.spec_requeue)

let now_int_ns () = Int64.to_int (Mclock.now_ns ())

let lease_held t =
  match t.lease_ctx with
  | None -> false
  | Some lc ->
    let u = Atomic.get lc.lease_until in
    u > 0 && now_int_ns () < u

let lease_renewals_count t =
  match t.lease_ctx with
  | None -> 0
  | Some lc -> Counter.get lc.lease_renewals

type queue_stats = {
  request_queue : int;
  proposal_queue : int;
  dispatcher_queue : int;
  decision_queue : int;
  window_in_use : int;
}

let queue_stats t =
  { request_queue = Bq.length t.request_q;
    proposal_queue = Bq.length t.proposal_q;
    dispatcher_queue = Bq.length t.dispatcher_q;
    decision_queue = Bq.length t.decision_q;
    window_in_use = Atomic.get t.window_now }

(* Read ingress: decode and put the read on the DecisionQueue. No
   Batcher, no Paxos, no ReplyCache — reads are idempotent, so they must
   not occupy at-most-once dedup slots (a read storm cannot evict a
   pending write's cached reply). The queue put is the linearizability
   wait (see [Read_exec]); called from client threads, hence the MPMC
   DecisionQueue in lease mode. *)
let submit_read t ~raw ~reply_to =
  match Client_msg.read_of_bytes raw with
  | exception (Msmr_wire.Codec.Underflow | Msmr_wire.Codec.Malformed _) ->
    Log_.warn (fun m -> m "replica %d: bad read frame" t.me)
  | read -> (
      let reject status =
        reply_to
          (Client_msg.read_reply_to_bytes { rid = read.id; status })
      in
      match t.lease_ctx with
      | None -> reject Client_msg.Read_unsupported
      | Some _ -> (
          try Bq.put t.decision_q (Read_exec { read; reply_to })
          with Bq.Closed ->
            reject (Client_msg.Not_leaseholder (Atomic.get t.leader_now))))

let submit ?reply_many ?conflict t ~raw ~reply_to =
  if Client_msg.is_read_raw raw then submit_read t ~raw ~reply_to
  else
    match t.client_io with
    | Some cio -> Client_io.submit ?reply_many ?conflict cio ~raw ~reply_to
    | None -> invalid_arg "Replica.submit: stopped"

let inject_suspect t = Bq.put t.dispatcher_q Suspect

let stall_stable_storage t stalled =
  match t.stable with
  | Some ss -> Atomic.set ss.ss_stall stalled
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Protocol thread: executes engine actions. *)

let enqueue_send_direct t dest msg =
  List.iter
    (fun d ->
       if d <> t.me then begin
         (* Never block the Protocol thread on a send queue (Section V-B):
            if a peer's sender is saturated, drop — retransmission and
            catch-up recover. *)
         match Bq.try_put t.send_qs.(d) msg with
         | true -> ()
         | false -> Counter.incr t.send_q_drops
         | exception Bq.Closed -> ()
       end)
    dest

(* With ProxyLeaders enabled, a multi-destination send costs the calling
   thread one enqueue instead of one per peer; the expansion happens on
   the ProxyLeader threads. Single-destination sends keep the direct
   path — there is nothing to fan out. *)
let enqueue_send t dest msg =
  match t.proxy_q with
  | None -> enqueue_send_direct t dest msg
  | Some pq -> (
      match List.filter (fun d -> d <> t.me) dest with
      | [] -> ()
      | [ d ] -> enqueue_send_direct t [ d ] msg
      | dests -> (
          match Bq.try_put pq (dests, msg) with
          | true -> ()
          | false -> Counter.incr t.send_q_drops
          | exception Bq.Closed -> ()))

let proxy_leader_loop t st =
  let pq = Option.get t.proxy_q in
  let continue = ref true in
  while !continue do
    match Bq.take ~st pq with
    | dests, msg ->
      List.iter
        (fun d ->
           Counter.incr t.proxy_fanout;
           match Bq.try_put t.send_qs.(d) msg with
           | true -> ()
           | false -> Counter.incr t.send_q_drops
           | exception Bq.Closed -> ())
        dests
    | exception Bq.Closed -> continue := false
  done

(* Which messages witness state that must be on stable storage before
   they reach the wire: a [Prepare_ok] carries a promise, an [Accepted]
   an acceptance, and the leader's own [Accept] broadcast implies its
   self-acceptance (logged when the proposal is scheduled). Everything
   else — [Decide], heartbeats, catch-up traffic — bypasses the gate. *)
let durability_gated = function
  | Msg.Prepare_ok _ | Msg.Accepted _ | Msg.Accept _ -> true
  | Msg.Prepare _ | Msg.Decide _ | Msg.Catchup_query _ | Msg.Catchup_reply _
  | Msg.Heartbeat _ | Msg.Lease_ping _ | Msg.Lease_grant _ -> false

(* Route a send through the durability gate. In Durable mode a gated
   message rides the StableStorage queue tagged with the current LSN —
   every event logged so far, in particular the one it depends on, is
   covered — and is forwarded to the send queues only once that LSN is
   durable. Ephemeral mode ([stable = None]) is the direct path,
   unchanged. *)
let enqueue_send_gated t dest msg =
  match t.stable with
  | Some ss when durability_gated msg ->
    (try
       Bq.put ss.log_q
         (Ss_release
            { lsn = Atomic.get ss.ss_lsn; dest; msg;
              enq_ns = Mclock.now_ns () })
     with Bq.Closed -> ())
  | Some _ | None -> enqueue_send t dest msg

let protocol_apply t (rtx_map : (Paxos.rtx_key, rtx_entry) Hashtbl.t) actions =
  let now = Mclock.now_ns () in
  List.iter
    (fun action ->
       match action with
       | Paxos.Send { dest; msg } -> enqueue_send_gated t dest msg
       | Paxos.Execute { iid; value } ->
         Counter.incr t.decided;
         (try Bq.put t.decision_q (Exec { iid; value })
          with Bq.Closed -> ())
       | Paxos.Schedule_rtx { key; dest; msg } ->
         let entry =
           { r_dest = dest; r_msg = msg; r_cancelled = Atomic.make false;
             r_t0 = now }
         in
         Hashtbl.replace rtx_map key entry;
         let at_ns =
           Int64.add now (Mclock.ns_of_s t.cfg.retransmit_interval_s)
         in
         (try ignore (Dq.schedule t.rtx_dq ~at_ns entry)
          with Dq.Closed -> ())
       | Paxos.Cancel_rtx key -> (
           match Hashtbl.find_opt rtx_map key with
           | Some entry ->
             (* Lock-free cancellation: flag only; the Retransmitter drops
                the entry when its timer fires (Section V-C4). *)
             Atomic.set entry.r_cancelled true;
             Hashtbl.remove rtx_map key;
             (* A cancelled Rtx_accept means the instance decided:
                schedule-to-cancel is the leader's commit latency. *)
             (if t.cfg.Config.auto_tune then
                match key with
                | Paxos.Rtx_accept _ ->
                  t.tune_lat_sum <-
                    t.tune_lat_sum
                    +. Mclock.s_of_ns (Int64.sub now entry.r_t0);
                  t.tune_lat_n <- t.tune_lat_n + 1
                | _ -> ())
           | None -> ())
       | Paxos.View_changed { view; leader; i_am_leader } ->
         if view <> Atomic.get t.view_now then Counter.incr t.view_changes;
         Atomic.set t.view_now view;
         Atomic.set t.leader_now leader;
         Atomic.set t.am_leader i_am_leader;
         (* Conservative lease invalidation: any view change drops the
            holder side immediately (the grantor-side promise survives
            inside [Lease.t] — it protects the previous holder). *)
         (match t.lease_ctx with
          | Some lc ->
            Lease.set_view lc.lease ~view;
            Atomic.set lc.lease_until 0
          | None -> ());
         (* Every open speculation predicted the old leader's log-append
            order; the new leader may re-propose in any order. *)
         if t.cfg.Config.speculate then
           (try Bq.put t.decision_q Spec_flush with Bq.Closed -> ());
         Failure_detector.set_view t.fd ~view ~now_ns:now;
         Log_.info (fun m ->
             m "replica %d: view %d, leader %d%s" t.me view leader
               (if i_am_leader then " (me)" else ""))
       | Paxos.Install_snapshot { next_iid = _; state } ->
         Counter.incr t.snapshot_installs;
         (try Bq.put t.decision_q (Install { state }) with Bq.Closed -> ())
       | Paxos.Membership_changed { membership; effective_iid } ->
         Counter.incr t.reconfigs_applied;
         Atomic.set t.membership_now membership;
         Atomic.set t.configs_now
           ((effective_iid, membership) :: Atomic.get t.configs_now);
         (* Epoch fencing: the quorum composition changed, so any held
            lease is conservatively invalid — and a removed node must
            never serve another lease read. *)
         (match t.lease_ctx with
          | Some lc -> Atomic.set lc.lease_until 0
          | None -> ());
         Failure_detector.set_membership t.fd membership ~now_ns:now;
         Log_.info (fun m ->
             m "replica %d: membership epoch %d at iid %d (%s)" t.me
               membership.Membership.epoch effective_iid
               (Format.asprintf "%a" Membership.pp membership)))
    actions

let protocol_loop t st =
  let rtx_map : (Paxos.rtx_key, rtx_entry) Hashtbl.t = Hashtbl.create 256 in
  (* Durable mode: every promise is logged before the Prepare_ok leaves,
     every acceptance before the Accepted leaves (with Sync_every_write
     this is the full acceptor durability contract; the weaker policies
     trade a suffix for speed, as the paper's evaluation setup does).
     "Logged" means handed to the StableStorage pipeline: the event gets
     the next LSN and goes on the log queue; the dependent message is
     enqueued behind it (see [enqueue_send_gated]) and cannot overtake
     it. The put blocks when the queue is full — that back-pressure is
     the pipeline's flow control: a disk that cannot keep up slows the
     Protocol thread instead of growing an unbounded buffer. *)
  let persist ev =
    match t.stable with
    | Some ss ->
      Atomic.incr ss.ss_lsn;
      (try Bq.put ss.log_q (Ss_log ev) with Bq.Closed -> ())
    | None -> ()
  in
  let persist_actions actions =
    if Option.is_some t.stable then
      List.iter
        (fun action ->
           match action with
           | Paxos.View_changed { view; _ } ->
             persist (Msmr_storage.Replica_store.View view)
           | Paxos.Schedule_rtx
               { key = Paxos.Rtx_accept (view, iid);
                 msg = Msg.Accept { value; _ }; _ } ->
             (* The leader accepts its own proposal. *)
             persist (Msmr_storage.Replica_store.Accepted { iid; view; value })
           | Paxos.Execute { iid; _ } ->
             persist
               (Msmr_storage.Replica_store.Decided
                  { iid; view = Atomic.get t.view_now })
           | Paxos.Send _ | Paxos.Schedule_rtx _ | Paxos.Cancel_rtx _
           | Paxos.Install_snapshot _
           (* Derived state: membership is rebuilt from checkpoint configs
              plus replay of the decided Reconfig instances. *)
           | Paxos.Membership_changed _ -> ())
        actions
  in
  let apply actions =
    persist_actions actions;
    protocol_apply t rtx_map actions
  in
  let view0 = Option.value t.gid ~default:0 in
  let engine =
    match t.recovered with
    | None ->
      let engine = Paxos.create ~view0 t.cfg ~me:t.me in
      apply (Paxos.bootstrap engine);
      engine
    | Some r ->
      let engine, replays =
        (* A pristine store in group [g] still re-enters view [g], not
           view 0, so leadership stays where the group layout puts it. *)
        Paxos.recover ~configs:r.Msmr_storage.Replica_store.r_configs t.cfg
          ~me:t.me
          ~view:(max r.Msmr_storage.Replica_store.r_view view0)
          ~accepted:r.r_accepted
          ~decided:r.r_decided ~snapshot:r.r_snapshot
      in
      (* Replays rebuild the service state; do not re-log them. *)
      protocol_apply t rtx_map replays;
      engine
  in
  (* Autotune controller: pure policy ticked here, on the engine-owning
     thread, every [tune_epoch_s]. Tuned BSZ is published through the
     [tuned_bsz] atomic for the Batcher threads; tuned WND is applied
     directly with [Paxos.set_window] (same thread, no synchronisation).
     No locks anywhere on the path, per the ReplicationCore rule. *)
  let tuner =
    if t.cfg.Config.auto_tune then Some (Autotune.of_config t.cfg) else None
  in
  let tune_last_ns = ref (Mclock.now_ns ()) in
  let tune_executed = ref (Counter.get t.executed) in
  let tune_seals = ref Batcher.{
      seals_size = 0; seals_delay = 0; sealed_bytes = 0; limit_bytes = 0 }
  in
  let agg_seals () =
    Array.fold_left
      (fun acc b ->
         let s = Batcher.seal_stats b in
         Batcher.{
           seals_size = acc.seals_size + s.seals_size;
           seals_delay = acc.seals_delay + s.seals_delay;
           sealed_bytes = acc.sealed_bytes + s.sealed_bytes;
           limit_bytes = acc.limit_bytes + s.limit_bytes })
      Batcher.{ seals_size = 0; seals_delay = 0; sealed_bytes = 0;
                limit_bytes = 0 }
      t.batchers
  in
  let tick_tuner engine =
    match tuner with
    | None -> ()
    | Some at ->
      let now = Mclock.now_ns () in
      let dt = Mclock.s_of_ns (Int64.sub now !tune_last_ns) in
      if dt >= t.cfg.Config.tune_epoch_s then begin
        let seals = agg_seals () in
        let prev = !tune_seals in
        let d_bytes = seals.Batcher.sealed_bytes - prev.Batcher.sealed_bytes in
        let d_limit = seals.Batcher.limit_bytes - prev.Batcher.limit_bytes in
        let executed = Counter.get t.executed in
        let signals =
          Autotune.{
            s_window_in_use = Paxos.window_in_use engine;
            s_proposal_queue = Bq.length t.proposal_q;
            s_log_queue =
              (match t.stable with
               | Some ss -> Bq.length ss.log_q
               | None -> 0);
            s_seals_size = seals.Batcher.seals_size - prev.Batcher.seals_size;
            s_seals_delay =
              seals.Batcher.seals_delay - prev.Batcher.seals_delay;
            s_batch_fill =
              (if d_limit = 0 then 0.
               else float_of_int d_bytes /. float_of_int d_limit);
            s_throughput = float_of_int (executed - !tune_executed) /. dt;
            s_commit_latency_s =
              (if t.tune_lat_n = 0 then 0.
               else t.tune_lat_sum /. float_of_int t.tune_lat_n);
          }
        in
        Autotune.tick at signals;
        Atomic.set t.tuned_bsz (Autotune.bsz at);
        Atomic.set t.tuned_wnd (Autotune.wnd at);
        Paxos.set_window engine (Autotune.wnd at);
        tune_last_ns := now;
        tune_executed := executed;
        tune_seals := seals;
        t.tune_lat_sum <- 0.;
        t.tune_lat_n <- 0
      end
  in
  (* Lease protocol (Config.lease_enabled): every Lease.t transition
     happens here, on the engine-owning thread, so the pure policy needs
     no synchronisation. The grantor's promise is enforced below by
     dropping excluded Prepares (safe: Phase 1 is retransmitted) and
     deferring Suspect verdicts (safe: the failure detector re-arms). *)
  (* Lease quorum and peer set follow the adopted membership epoch: only
     voters grant, and a majority of the current voters is required. With
     a static full membership this is exactly the old [n/2 + 1] over all
     peers. *)
  let lease_quorum () = Membership.quorum (Atomic.get t.membership_now) in
  let lease_peers () =
    List.filter (fun p -> p <> t.me)
      (Atomic.get t.membership_now).Membership.voters
  in
  let lease_tick () =
    match t.lease_ctx with
    | Some lc
      when Atomic.get t.am_leader
           && Membership.is_voter (Atomic.get t.membership_now) t.me ->
      let now = now_int_ns () in
      if Lease.ping_due lc.lease ~now_ns:now then begin
        let ping = Lease.make_ping lc.lease ~now_ns:now in
        (* A singleton group grants to itself at ping time. *)
        Atomic.set lc.lease_until (Lease.held_until_ns lc.lease);
        enqueue_send t (lease_peers ()) ping
      end
    | Some _ | None -> ()
  in
  let on_lease_msg lc from msg =
    match msg with
    | Msg.Lease_ping { view; t0_ns }
      (* A removed replica never grants: its promise could outlive its
         knowledge of the epoch that excluded it. *)
      when Membership.is_voter (Atomic.get t.membership_now) t.me -> (
        match
          Lease.on_ping lc.lease ~from ~view ~t0_ns ~now_ns:(now_int_ns ())
        with
        | Some grant ->
          (* Never durability-gated: a grant witnesses only clock state. *)
          enqueue_send t [ from ] grant
        | None -> ())
    | Msg.Lease_grant { view; t0_ns } ->
      if
        Atomic.get t.am_leader
        && Lease.on_grant lc.lease ~from ~view ~t0_ns ~quorum:(lease_quorum ())
      then begin
        Counter.incr lc.lease_renewals;
        Atomic.set lc.lease_until (Lease.held_until_ns lc.lease)
      end
    | _ -> ()
  in
  (* Does an active promise exclude the node that [Prepare view] tries to
     elect? (The candidate for a view is statically its leader.) *)
  let promise_drops_prepare view =
    match t.lease_ctx with
    | None -> false
    | Some lc ->
      Lease.promise_blocks lc.lease
        ~candidate:(Types.leader_of_view ~n:t.cfg.Config.n view)
        ~now_ns:(now_int_ns ())
  in
  let promise_defers_suspect () =
    match t.lease_ctx with
    | None -> false
    | Some lc ->
      (* Acting on the suspicion would start Phase 1 for a view this
         node leads; the promise forbids helping elect anyone but the
         grantee. *)
      Lease.promise_blocks lc.lease ~candidate:t.me ~now_ns:(now_int_ns ())
  in
  let handle = function
    | Proposal_ready -> ()
    | Housekeeping_tick ->
      lease_tick ();
      apply (Paxos.tick_catchup engine)
    | Reconfig_request m -> apply (Paxos.propose_reconfig engine m)
    | Peer_msg { from; msg = (Msg.Lease_ping _ | Msg.Lease_grant _) as msg }
      when Option.is_some t.lease_ctx ->
      on_lease_msg (Option.get t.lease_ctx) from msg
    | Peer_msg { from = _; msg = Msg.Prepare { view; _ } }
      when promise_drops_prepare view ->
      (* Dropped, not rejected: the excluded candidate's Rtx_prepare will
         retry after the promise (and with it the lease) has expired. *)
      ()
    | Peer_msg { from; msg } ->
      (* Acceptor durability: the promise/acceptance must hit the log
         before the corresponding Prepare_ok/Accepted can leave. Logging
         before the engine even looks at the message is pessimistic
         (stale messages get logged too) but recovery keeps only the
         highest view per instance, so it is safe. *)
      (match msg with
       | Msg.Accept { view; iid; value } ->
         persist (Msmr_storage.Replica_store.Accepted { iid; view; value })
       | Msg.Prepare { view; _ } ->
         persist (Msmr_storage.Replica_store.View view)
       | Msg.Catchup_reply { entries; _ } ->
         (* Values learnt through catch-up never came in an Accept;
            persist them so recovery does not lose the executed prefix. *)
         List.iter
           (fun (e : Msg.log_entry) ->
              if e.e_decided then begin
                persist
                  (Msmr_storage.Replica_store.Accepted
                     { iid = e.e_iid; view = e.e_view; value = e.e_value });
                persist
                  (Msmr_storage.Replica_store.Decided
                     { iid = e.e_iid; view = e.e_view })
              end)
           entries
       | Msg.Prepare_ok _ | Msg.Accepted _ | Msg.Decide _
       | Msg.Catchup_query _ | Msg.Heartbeat _ | Msg.Lease_ping _
       | Msg.Lease_grant _ -> ());
      (* Follower freshness for bounded-staleness reads: remember the
         current leader's last advertised decided frontier and when it
         arrived. *)
      (match (msg, t.lease_ctx) with
       | Msg.Heartbeat { view; first_undecided }, Some lc
         when view = Atomic.get t.view_now && from = Atomic.get t.leader_now
         ->
         Atomic.set lc.hb_frontier first_undecided;
         Atomic.set lc.hb_recv_ns (now_int_ns ())
       | _ -> ());
      apply (Paxos.receive engine ~from msg)
    | Suspect when promise_defers_suspect () ->
      (* The FD re-arms after a verdict, so the suspicion re-fires after
         the promise has lapsed; a live leader will have renewed by then. *)
      ()
    | Suspect ->
      Counter.incr t.suspects;
      apply (Paxos.suspect_leader engine)
    | Snapshot_taken { next_iid; state } ->
      apply (Paxos.note_snapshot engine ~next_iid ~state)
  in
  while Atomic.get t.running do
    (match Bq.take ~st t.dispatcher_q with
     | ev ->
       handle ev;
       (* Drain a bounded burst to amortise queue locking. *)
       let rec burst k =
         if k > 0 then
           match Bq.try_take t.dispatcher_q with
           | Some ev -> handle ev; burst (k - 1)
           | None -> ()
       in
       burst 64
     | exception Bq.Closed -> Atomic.set t.running false);
    (* Start new ballots while the window allows (pipelining). *)
    let rec feed () =
      if Paxos.can_propose engine then
        match Bq.try_take t.proposal_q with
        | Some batch ->
          apply (Paxos.propose engine batch);
          feed ()
        | None -> ()
    in
    feed ();
    tick_tuner engine;
    Atomic.set t.window_now (Paxos.window_in_use engine);
    Atomic.set t.first_undecided_now
      (Msmr_consensus.Log.first_undecided (Paxos.log engine))
  done

(* ------------------------------------------------------------------ *)
(* StableStorage thread (Durable mode): the other end of the pipeline
   described at [ss_item]. Burst size bounds how many events one fsync
   can cover, and therefore how long a gated message can wait behind
   unrelated appends. *)

let stable_storage_loop t (ss : stable) st =
  let store = Option.get t.store in
  let pending : (int * Types.node_id list * Msg.t * int64) Queue.t =
    Queue.create ()
  in
  (* FIFO: the head has the smallest LSN, so releases happen in log
     order. *)
  let release watermark =
    let rec go () =
      match Queue.peek_opt pending with
      | Some (lsn, dest, msg, enq_ns) when lsn <= watermark ->
        ignore (Queue.pop pending);
        Msmr_platform.Histogram.record ss.ss_hold
          (Mclock.s_of_ns (Int64.sub (Mclock.now_ns ()) enq_ns));
        enqueue_send t dest msg;
        go ()
      | _ -> ()
    in
    go ()
  in
  let buf = Array.make 256 None in
  let continue = ref true in
  while !continue do
    match Bq.take_batch_into ~st ss.log_q ~buf with
    | exception Bq.Closed -> continue := false
    | n ->
      (* Test hook: park with the burst in hand — nothing is logged or
         released while stalled. *)
      while Atomic.get ss.ss_stall && Atomic.get t.running do
        Thread_state.enter st Thread_state.Waiting (fun () ->
            Mclock.sleep_s 0.0005)
      done;
      let events = ref [] in
      for i = n - 1 downto 0 do
        match buf.(i) with
        | Some (Ss_log ev) -> events := ev :: !events
        | Some (Ss_release _) | None -> ()
      done;
      (* One [log_batch] per burst: under [Sync_every_write] every event
         in it shares a single fsync (group commit), and the returned
         LSN is durable. Under the weaker policies the pre-pipeline
         contract was append-before-send, so the appended LSN is the
         right release watermark there too. *)
      let watermark =
        Msmr_storage.Replica_store.log_batch ~st store !events
      in
      for i = 0 to n - 1 do
        (match buf.(i) with
         | Some (Ss_release { lsn; dest; msg; enq_ns }) ->
           Queue.push (lsn, dest, msg, enq_ns) pending
         | Some (Ss_log _) | None -> ());
        buf.(i) <- None
      done;
      release watermark
  done

(* ------------------------------------------------------------------ *)
(* Batcher thread. Several may run (the paper's Section VI-B extension);
   they share the RequestQueue and build disjoint batches, with disjoint
   [src] spaces keeping batch ids unique. *)

let batcher_burst = 32

let batcher_loop idx t st =
  let policy = t.batchers.(idx) in
  (* Scratch buffer for the post-wakeup burst drain: once one request
     arrives, siblings queued behind it are folded into the batch without
     further blocking (or list allocation). *)
  let buf = Array.make batcher_burst None in
  let running = ref true in
  while !running && Atomic.get t.running do
    let now = Mclock.now_ns () in
    let timeout_s =
      match Batcher.deadline_ns policy with
      | None -> 0.002
      | Some d -> Float.max 0.0001 (Float.min 0.002 (Mclock.s_of_ns (Int64.sub d now)))
    in
    let publish batch =
      try
        Bq.put ~st t.proposal_q batch;
        ignore (Bq.try_put t.dispatcher_q Proposal_ready)
      with Bq.Closed -> running := false
    in
    let add req =
      match Batcher.add policy req ~now_ns:(Mclock.now_ns ()) with
      | Some batch -> publish batch
      | None -> ()
    in
    match Bq.take_timeout ~st t.request_q ~timeout_s with
    | Some req ->
      add req;
      let n = Bq.drain_into t.request_q ~buf in
      for i = 0 to n - 1 do
        if !running then
          match buf.(i) with
          | Some req -> add req; buf.(i) <- None
          | None -> ()
      done
    | None -> (
        match Batcher.flush_due policy ~now_ns:(Mclock.now_ns ()) with
        | Some batch -> publish batch
        | None -> ())
    | exception Bq.Closed ->
      (* Flush the open batch on shutdown. *)
      (match Batcher.force_flush policy with
       | Some batch -> (try Bq.put t.proposal_q batch with Bq.Closed -> ())
       | None -> ());
      running := false
  done

(* ------------------------------------------------------------------ *)
(* ReplicaIO threads. *)

(* Sender coalescing: drain a bounded burst per pass, encode each
   message through the Codec writer pool, and hand the whole run to the
   link in one [send_many] (a single write(2) over TCP) — the
   inter-replica mirror of ClientIO's reply coalescing. The bound keeps
   one pass from monopolising the link when the queue is deep. *)
let sender_burst = 32

let sender_loop t peer (link : Transport.link) st =
  let q = t.send_qs.(peer) in
  (* One scratch buffer per sender thread: the hottest drain edge stops
     allocating a list per pass. *)
  let buf = Array.make sender_burst None in
  let continue = ref true in
  while !continue do
    match Bq.take_batch_into ~st q ~buf with
    | n ->
      let frames = ref [] in
      for i = n - 1 downto 0 do
        match buf.(i) with
        | Some msg ->
          frames := Msg.encode msg :: !frames;
          buf.(i) <- None
        | None -> ()
      done;
      Thread_state.enter st Thread_state.Other (fun () ->
          link.send_many !frames);
      Counter.incr t.sender_flushes;
      Failure_detector.note_send t.fd ~dest:peer ~now_ns:(Mclock.now_ns ())
    | exception Bq.Closed -> continue := false
  done

let receiver_loop t peer (link : Transport.link) st =
  let continue = ref true in
  while !continue do
    match
      Thread_state.enter st Thread_state.Other (fun () -> link.recv_bytes ())
    with
    | None -> continue := false
    | Some raw -> (
        match Msg.decode raw with
        | msg ->
          Failure_detector.note_recv t.fd ~from:peer ~now_ns:(Mclock.now_ns ());
          (try Bq.put ~st t.dispatcher_q (Peer_msg { from = peer; msg })
           with Bq.Closed -> continue := false)
        | exception (Msmr_wire.Codec.Underflow | Msmr_wire.Codec.Malformed _) ->
          Log_.warn (fun m -> m "replica %d: bad frame from %d" t.me peer))
  done

(* ------------------------------------------------------------------ *)
(* FailureDetector thread. *)

let fd_loop t st =
  while Atomic.get t.running do
    let now = Mclock.now_ns () in
    List.iter
      (fun verdict ->
         match verdict with
         | Failure_detector.Heartbeat_to peers ->
           (* Only an ACTIVE leader advertises liveness: a recovered or
              deposed node that still sits in a view it nominally leads
              must not suppress the other replicas' suspicion. *)
           if Atomic.get t.am_leader then begin
             let msg =
               Msg.Heartbeat
                 { view = Atomic.get t.view_now;
                   first_undecided = Atomic.get t.first_undecided_now }
             in
             List.iter (fun p -> ignore (Bq.try_put t.send_qs.(p) msg)) peers
           end
         | Failure_detector.Suspect _leader -> (
             try Bq.put t.dispatcher_q Suspect with Bq.Closed -> ()))
      (Failure_detector.poll t.fd ~now_ns:now);
    (* Drive the Protocol thread's periodic catch-up check too, so its
       event loop can block indefinitely between events. *)
    (try ignore (Bq.try_put t.dispatcher_q Housekeeping_tick)
     with Bq.Closed -> ());
    let wake = Failure_detector.next_wake_ns t.fd ~now_ns:now in
    let nap =
      Float.min t.cfg.catchup_interval_s
        (Float.max 0.001 (Mclock.s_of_ns (Int64.sub wake now)))
    in
    Thread_state.enter st Thread_state.Other (fun () -> Mclock.sleep_s nap)
  done

(* ------------------------------------------------------------------ *)
(* Retransmitter thread. *)

let retransmitter_loop t st =
  let continue = ref true in
  while !continue do
    match Dq.take ~st t.rtx_dq with
    | entry ->
      if not (Atomic.get entry.r_cancelled) then begin
        (* Retransmitted Prepare_ok/Accepted/Accept honour the
           durability gate too: the timer can in principle fire before
           a slow disk has made the original durable. *)
        enqueue_send_gated t entry.r_dest entry.r_msg;
        let at_ns =
          Int64.add (Mclock.now_ns ())
            (Mclock.ns_of_s t.cfg.retransmit_interval_s)
        in
        try ignore (Dq.schedule t.rtx_dq ~at_ns entry)
        with Dq.Closed -> continue := false
      end
    | exception Dq.Closed -> continue := false
  done

(* ------------------------------------------------------------------ *)
(* ServiceManager. With executor_threads = 1 (the default) a single
   Replica thread consumes the DecisionQueue and executes inline, exactly
   the paper's single ServiceManager. With more, the same thread becomes
   a scheduler over an executor pool (see [exec_pool] above). *)

(* Execute one decided request unconditionally: service call, reply
   cache update, reply hand-off. The caller is responsible for
   at-most-once (the serial path checks inline; the executor pool
   decides it at dispatch time, in decide order). *)
let exec_request_unchecked t (req : Client_msg.request) =
  let result = t.service.execute req in
  Reply_cache.store t.reply_cache req.id result;
  Counter.incr t.executed;
  match t.client_io with
  | Some cio -> Client_io.deliver_reply cio { id = req.id; result }
  | None -> ()

(* Serial path: at-most-once check + execute. The check-then-act is safe
   because one thread executes everything in decide order. *)
let exec_request t (req : Client_msg.request) =
  (* At-most-once: a duplicate that slipped into a batch is not
     re-executed. *)
  if not (Reply_cache.already_executed t.reply_cache req.id) then
    exec_request_unchecked t req

(* Serve one read popped off the DecisionQueue, on the SM/scheduler
   thread. The FIFO position already provided the apply-frontier wait;
   what remains is the authority check at execution time:

   - linearizable: this node must hold a currently valid lease. Valid
     lease => no newer leader exists => every write this cluster has
     acknowledged is in our applied prefix (writes enqueued behind us in
     the queue are unacknowledged, hence concurrent — ordering the read
     before them is legal). The read bypasses the ReplyCache entirely.
   - bounded staleness: any replica may answer if its state is provably
     no older than the client's bound — it was caught up to the leader's
     advertised frontier within the bound, or it applied a decision
     within the bound with nothing pending (an idle caught-up follower),
     or it is the leaseholder (trivially fresh).

   Scheduler mode executes the read inline without quiescing the pool:
   an executor-resident write is un-replied (replies only happen at
   execution), hence concurrent with this read, and the service stores
   are per-key atomic — so serving the pre-write value linearizes the
   read before that write. *)
let exec_read t (read : Client_msg.read) reply_to =
  let lc = Option.get t.lease_ctx in
  let now = now_int_ns () in
  let member = Membership.is_member (Atomic.get t.membership_now) t.me in
  let holder () =
    let u = Atomic.get lc.lease_until in
    (* Epoch fencing: a replica removed from the membership never serves
       a read, lease or not (its lease was zeroed at adoption; this also
       covers the window before it learns of its own removal through a
       newer epoch it helped decide). *)
    member && Atomic.get t.am_leader && u > 0 && now < u
  in
  let serve () = t.service.execute { id = read.id; payload = read.payload } in
  let hint () = Atomic.get t.leader_now in
  let status =
    if read.staleness_ns < 0 then
      if holder () then begin
        Counter.incr t.reads_served;
        Client_msg.Read_ok (serve ())
      end
      else begin
        Counter.incr t.reads_rejected;
        Client_msg.Not_leaseholder (hint ())
      end
    else begin
      let fresh_ns =
        if not member then 0
        else if holder () then now
        else
          let hb =
            if Atomic.get t.applied_iid >= Atomic.get lc.hb_frontier then
              Atomic.get lc.hb_recv_ns
            else 0
          in
          let idle =
            if Bq.length t.decision_q = 0 then Atomic.get t.last_apply_ns
            else 0
          in
          max hb idle
      in
      if fresh_ns > 0 && now - fresh_ns <= read.staleness_ns then begin
        Counter.incr t.stale_served;
        Client_msg.Read_ok (serve ())
      end
      else begin
        Counter.incr t.stale_rejected;
        Client_msg.Too_stale (hint ())
      end
    end
  in
  reply_to (Client_msg.read_reply_to_bytes { rid = read.id; status })

(* Apply-frontier bookkeeping shared by both ServiceManager variants. *)
let note_applied t ~iid =
  Atomic.set t.applied_iid (iid + 1);
  Atomic.set t.last_apply_ns (now_int_ns ())

(* Snapshot bookkeeping shared by both ServiceManager variants; the
   caller guarantees quiescence. *)
let take_snapshot t ~iid =
  let state = t.service.snapshot () in
  (match t.store with
   | Some store ->
     Msmr_storage.Replica_store.checkpoint store ~next_iid:(iid + 1) ~state
       ~configs:(Atomic.get t.configs_now)
   | None -> ());
  try Bq.put t.dispatcher_q (Snapshot_taken { next_iid = iid + 1; state })
  with Bq.Closed -> ()

let service_manager_loop t st =
  let instances_executed = ref 0 in
  let continue = ref true in
  while !continue do
    match Bq.take ~st t.decision_q with
    | exception Bq.Closed -> continue := false
    | Install { state } -> t.service.restore state
    | Read_exec { read; reply_to } -> exec_read t read reply_to
    | Spec _ | Spec_flush ->
      (* Speculation needs the executor pool; the serial ServiceManager
         never wires the ingress hook, so only a stray Spec_flush from a
         view change can land here. Ordered execution ignores it. *)
      ()
    | Exec { iid; value } ->
      (match value with
       (* Reconfig instances mutate the engine's membership (adopted on
          the Protocol thread), not the service state. *)
       | Value.Noop | Value.Reconfig _ -> ()
       | Value.Batch batch -> List.iter (exec_request t) batch.requests);
      if Option.is_some t.lease_ctx then note_applied t ~iid;
      incr instances_executed;
      if t.cfg.snapshot_every > 0
         && !instances_executed mod t.cfg.snapshot_every = 0
      then take_snapshot t ~iid
  done

(* --- Executor pool (see {!Exec_pool} for the two variants) ----------- *)

let route pool key = Hashtbl.hash key mod Exec_pool.lanes pool

(* At-most-once, decided by the scheduler in decide order (see
   [exec_frontier]). Returns [true] when the request is fresh and must be
   dispatched. Duplicates are skipped silently, exactly as the serial
   path skips them: resending cached replies is ClientIO's job at
   ingress. *)
let frontier_admit ctx (req : Client_msg.request) =
  match Hashtbl.find_opt ctx.exec_frontier req.id.client_id with
  | Some newest when req.id.seq <= newest -> false
  | _ ->
    Hashtbl.replace ctx.exec_frontier req.id.client_id req.id.seq;
    true

(* Classify once: the ingress hook cached the conflict class keyed by
   (client, seq); a hit saves the second classification the pre-PR-9
   spine paid here. Miss = the cache entry was overwritten by a newer
   request of the same client, or this replica executed a request it
   never saw at ingress (forwarded batch) — classify locally. *)
let conflict_of t ctx (req : Client_msg.request) =
  match Cmap.find_opt ctx.conflict_cache req.id.client_id with
  | Some (seq, c) when seq = req.id.seq -> c
  | Some _ | None -> t.service.conflict_keys req

(* Abort one key's mispredicted frames: the W_aborts ride the frames' own
   lanes, behind their W_specs (FIFO), so each undo runs after — and only
   after — the speculative execution it reverses. *)
let push_aborts ~st ctx sc frames =
  List.iter
    (fun (f : Spec_ledger.frame) ->
       Counter.incr sc.spec_abort;
       Exec_pool.send ~st ctx.pool ~lane:f.f_lane (W_abort f))
    frames

(* Drop every open speculation and wait until all speculative effects are
   confirmed-or-undone. After this the service state is exactly the
   ordered prefix — the precondition for snapshots, state transfer,
   Global commands and linearizable reads. *)
let spec_drain ctx st =
  match ctx.spec with
  | None -> ()
  | Some sc ->
    push_aborts ~st ctx sc (Spec_ledger.abort_all sc.ledger);
    if Spec_ledger.effects_pending sc.ledger then
      Exec_pool.quiesce ctx.pool st

(* Ledger admission for a pre-dispatched request, on the scheduler
   thread so it cannot race the decide path. Only single-key commands
   speculate — exactly the commands whose lane FIFO can serialise the
   speculation against later ordered traffic on the same key. *)
let spec_admit t ctx st (req : Client_msg.request) conflict =
  match ctx.spec with
  | None -> ()
  | Some sc ->
    if Atomic.get t.am_leader then
      match conflict with
      | Service.Keys [ key ] ->
        let fresh =
          (not (Reply_cache.already_executed t.reply_cache req.id))
          && (match Hashtbl.find_opt ctx.exec_frontier req.id.client_id with
              | Some newest -> req.id.seq > newest
              | None -> true)
        in
        if fresh then (
          match
            Spec_ledger.admit sc.ledger req.id ~key
              ~lane:(route ctx.pool key) ~now_ns:(Mclock.now_ns ())
          with
          | None -> ()
          | Some frame ->
            Counter.incr sc.spec_dispatch;
            Exec_pool.send ~st ctx.pool ~lane:frame.f_lane
              (W_spec (frame, req)))
      | Service.Keys _ | Service.Global -> ()

(* Route one decided request. Same key -> same lane -> decide order
   preserved among conflicting commands; disjoint keys run concurrently.
   Commands spanning several lanes, and Global ones, are executed inline
   between two well-defined pool states. With speculation on, the decide
   is first matched against the ledger: a confirmed prediction turns
   into a W_confirm on the frame's lane (the execution already
   happened), a mispredict into W_aborts followed by the ordered
   re-execution. *)
let dispatch t ctx st (req : Client_msg.request) =
  if frontier_admit ctx req then
    let pool = ctx.pool in
    match conflict_of t ctx req with
    | Service.Keys [] ->
      (* Conflicts with nothing: spread over the pool. *)
      Exec_pool.send_rr ~st pool (W_exec req)
    | Service.Keys [ key ] ->
      let speculated =
        match ctx.spec with
        | None -> false
        | Some sc -> (
            match Spec_ledger.on_decide sc.ledger req.id ~key with
            | Spec_ledger.Confirm frame ->
              Counter.incr sc.spec_confirm;
              Exec_pool.send ~st pool ~lane:frame.f_lane
                (W_confirm (frame, req));
              true
            | Spec_ledger.Mispredict frames ->
              push_aborts ~st ctx sc frames;
              Counter.incr sc.spec_requeue;
              false
            | Spec_ledger.No_frame -> false)
      in
      if not speculated then
        Exec_pool.send ~st pool ~lane:(route pool key) (W_exec req)
    | Service.Keys keys -> (
        (* A multi-key command was never itself speculated, but open
           frames on its keys predicted a different next-decide there:
           abort them. Their keys hash to this command's lane set, so
           the aborts stay FIFO-before the command or the quiesce. *)
        (match ctx.spec with
         | Some sc ->
           List.iter
             (fun key ->
                match Spec_ledger.on_decide sc.ledger req.id ~key with
                | Spec_ledger.Mispredict frames ->
                  push_aborts ~st ctx sc frames
                | Spec_ledger.Confirm _ | Spec_ledger.No_frame -> ())
             keys
         | None -> ());
        match List.sort_uniq compare (List.map (route pool) keys) with
        | [ lane ] -> Exec_pool.send ~st pool ~lane (W_exec req)
        | _ ->
          Exec_pool.quiesce pool st;
          exec_request_unchecked t req)
    | Service.Global ->
      spec_drain ctx st;
      Exec_pool.quiesce pool st;
      exec_request_unchecked t req

let scheduler_loop t ctx st =
  let pool = ctx.pool in
  let instances_executed = ref 0 in
  let continue = ref true in
  while !continue do
    match Bq.take ~st t.decision_q with
    | exception Bq.Closed -> continue := false
    | Install { state } ->
      (* State transfer replaces the whole service state: roll back any
         speculation first, then quiesce. *)
      spec_drain ctx st;
      Exec_pool.quiesce pool st;
      t.service.restore state
    | Read_exec { read; reply_to } ->
      (* Inline, no quiesce for ordered traffic: see [exec_read] for why
         racing an executor-resident (un-replied, hence concurrent)
         write is a legal linearization. Speculative effects are
         different — they may be rolled back, so a read must never
         observe them: drain them first. *)
      (match ctx.spec with
       | Some sc when Spec_ledger.effects_pending sc.ledger ->
         spec_drain ctx st
       | Some _ | None -> ());
      exec_read t read reply_to
    | Spec { req; conflict } -> spec_admit t ctx st req conflict
    | Spec_flush -> (
        (* View change: predictions void. No quiesce needed — each
           W_abort is FIFO behind its W_spec, so lane order alone
           guarantees the undos run against the right state. *)
        match ctx.spec with
        | Some sc -> push_aborts ~st ctx sc (Spec_ledger.abort_all sc.ledger)
        | None -> ())
    | Exec { iid; value } ->
      (match value with
       | Value.Noop | Value.Reconfig _ -> ()
       | Value.Batch batch -> List.iter (dispatch t ctx st) batch.requests);
      if Option.is_some t.lease_ctx then note_applied t ~iid;
      incr instances_executed;
      if t.cfg.snapshot_every > 0
         && !instances_executed mod t.cfg.snapshot_every = 0
      then begin
        (* Snapshots must capture a prefix-closed state. *)
        spec_drain ctx st;
        Exec_pool.quiesce pool st;
        take_snapshot t ~iid
      end
  done;
  (* Let the executors drain and exit. *)
  Exec_pool.close pool

(* Executor-side work interpreter (replaces the bare request execution
   of PR 7). The ordered path is byte-identical when speculation is off:
   every item is then a [W_exec]. *)
let exec_work t ctx (w : work) =
  match w with
  | W_exec req -> exec_request_unchecked t req
  | W_spec (frame, req) -> (
      match t.service.execute_undo with
      | None -> ()
      | Some execute_undo ->
        let reply, undo = execute_undo req in
        Atomic.set frame.f_undo (Some undo);
        (* Staged replies are invisible to lookups: a client retry still
           reads Fresh and takes the ordered path, so at-most-once is
           decided only at confirm time. *)
        Reply_cache.stage t.reply_cache frame.f_id reply)
  | W_confirm (frame, req) ->
    let sc = Option.get ctx.spec in
    (match Reply_cache.confirm t.reply_cache frame.f_id with
     | Some result ->
       Counter.incr t.executed;
       (match t.client_io with
        | Some cio -> Client_io.deliver_reply cio { id = frame.f_id; result }
        | None -> ())
     | None ->
       (* Defensive: nothing staged (cannot happen — the W_spec is FIFO
          before us on this lane). Fall back to ordered execution. *)
       exec_request_unchecked t req);
    let lead = Int64.to_int (Int64.sub (Mclock.now_ns ()) frame.f_dispatch_ns) in
    ignore (Atomic.fetch_and_add sc.lead_ns_sum lead);
    Atomic.incr sc.lead_n;
    Spec_ledger.settled sc.ledger frame
  | W_abort frame ->
    let sc = Option.get ctx.spec in
    (match Atomic.get frame.f_undo with
     | Some undo -> undo ()
     | None -> () (* admitted but the W_spec never ran (pool closing) *));
    Reply_cache.unstage t.reply_cache frame.f_id;
    Spec_ledger.settled sc.ledger frame

(* ------------------------------------------------------------------ *)
(* Observability: every replica exposes its queue depths, window and
   progress counters in the shared registry (docs/OBSERVABILITY.md).
   Gauges are snapshot-time closures over state the replica already
   keeps, so the hot path pays nothing. *)

let metric_labels t =
  [ ("mode", "live"); ("replica", string_of_int t.me) ]
  @ match t.gid with
    | Some g -> [ ("group", string_of_int g) ]
    | None -> []

let metric_names =
  [ "msmr_replica_request_queue_depth";
    "msmr_replica_proposal_queue_depth";
    "msmr_replica_dispatcher_queue_depth";
    "msmr_replica_decision_queue_depth";
    "msmr_replica_window_in_use";
    "msmr_replica_decided";
    "msmr_replica_executed";
    "msmr_replica_send_queue_drops";
    "msmr_replica_client_ingress_depth";
    "msmr_replica_executor_queue_depth";
    "msmr_replica_executor_dispatched";
    "msmr_replica_executor_barriers";
    "msmr_executor_steal_total";
    "msmr_executor_steal_fail_total";
    "msmr_executor_spec_dispatch_total";
    "msmr_executor_spec_confirm_total";
    "msmr_executor_spec_abort_total";
    "msmr_executor_spec_requeue_total";
    "msmr_replica_spec_lead_s";
    "msmr_replica_sender_flushes";
    "msmr_replica_proxy_fanout_total";
    "msmr_replica_proxy_queue_depth";
    "msmr_replica_log_queue_depth";
    "msmr_replica_durable_hold_s";
    "msmr_replica_bsz_now";
    "msmr_replica_wnd_now";
    "msmr_replica_batch_fill";
    "msmr_replica_flush_size_total";
    "msmr_replica_flush_delay_total";
    "msmr_replica_view_changes_total";
    "msmr_replica_suspect_total";
    "msmr_replica_reconnect_total";
    "msmr_lease_held";
    "msmr_lease_renewals_total";
    "msmr_lease_until_ns";
    "msmr_read_served_total";
    "msmr_read_rejected_total";
    "msmr_read_stale_served_total";
    "msmr_read_stale_rejected_total";
    "msmr_replica_reconfig_epoch";
    "msmr_replica_reconfig_applied_total";
    "msmr_replica_reconfig_member";
    "msmr_replica_reconfig_voters";
    "msmr_replica_snapshot_install_total" ]

let register_metrics t =
  let labels = metric_labels t in
  let g name f = Msmr_obs.Metrics.gauge ~labels name f in
  let fi x = float_of_int x in
  g "msmr_replica_request_queue_depth" (fun () -> fi (Bq.length t.request_q));
  g "msmr_replica_proposal_queue_depth" (fun () -> fi (Bq.length t.proposal_q));
  g "msmr_replica_dispatcher_queue_depth" (fun () ->
      fi (Bq.length t.dispatcher_q));
  g "msmr_replica_decision_queue_depth" (fun () -> fi (Bq.length t.decision_q));
  g "msmr_replica_window_in_use" (fun () -> fi (Atomic.get t.window_now));
  g "msmr_replica_decided" (fun () -> fi (Counter.get t.decided));
  g "msmr_replica_executed" (fun () -> fi (Counter.get t.executed));
  g "msmr_replica_send_queue_drops" (fun () -> fi (Counter.get t.send_q_drops));
  g "msmr_replica_client_ingress_depth" (fun () ->
      match t.client_io with
      | Some cio -> fi (Client_io.ingress_length cio)
      | None -> 0.);
  g "msmr_replica_executor_queue_depth" (fun () ->
      match t.exec_pool with
      | Some c -> fi (Exec_pool.depth c.pool)
      | None -> 0.);
  g "msmr_replica_executor_dispatched" (fun () ->
      match t.exec_pool with
      | Some c -> fi (Exec_pool.dispatched c.pool)
      | None -> 0.);
  g "msmr_replica_executor_barriers" (fun () ->
      match t.exec_pool with
      | Some c -> fi (Exec_pool.barriers c.pool)
      | None -> 0.);
  g "msmr_executor_steal_total" (fun () ->
      match t.exec_pool with
      | Some c -> fi (Exec_pool.steals c.pool)
      | None -> 0.);
  g "msmr_executor_steal_fail_total" (fun () ->
      match t.exec_pool with
      | Some c -> fi (Exec_pool.steal_fails c.pool)
      | None -> 0.);
  let spec f =
    match t.exec_pool with
    | Some { spec = Some sc; _ } -> f sc
    | Some { spec = None; _ } | None -> 0.
  in
  g "msmr_executor_spec_dispatch_total" (fun () ->
      spec (fun sc -> fi (Counter.get sc.spec_dispatch)));
  g "msmr_executor_spec_confirm_total" (fun () ->
      spec (fun sc -> fi (Counter.get sc.spec_confirm)));
  g "msmr_executor_spec_abort_total" (fun () ->
      spec (fun sc -> fi (Counter.get sc.spec_abort)));
  g "msmr_executor_spec_requeue_total" (fun () ->
      spec (fun sc -> fi (Counter.get sc.spec_requeue)));
  g "msmr_replica_spec_lead_s" (fun () ->
      (* mean dispatch -> confirm lead of confirmed speculations: how far
         ahead of commit the execution ran *)
      spec (fun sc ->
          let n = Atomic.get sc.lead_n in
          if n = 0 then 0.
          else fi (Atomic.get sc.lead_ns_sum) /. fi n /. 1e9));
  (* Process-wide spin/park accounting for the lock-free channels.
     Registered with process-global labels: re-registration by another
     replica is a no-op replace of an identical closure, and the gauges
     are deliberately not removed on [stop]. *)
  Msmr_obs.Metrics.gauge ~labels:[ ("mode", "live") ] "msmr_queue_spin_total"
    (fun () -> fi (Waitstats.spin_total ()));
  Msmr_obs.Metrics.gauge ~labels:[ ("mode", "live") ] "msmr_queue_park_total"
    (fun () -> fi (Waitstats.park_total ()));
  g "msmr_replica_sender_flushes" (fun () -> fi (Counter.get t.sender_flushes));
  g "msmr_replica_proxy_fanout_total" (fun () ->
      fi (Counter.get t.proxy_fanout));
  g "msmr_replica_proxy_queue_depth" (fun () ->
      match t.proxy_q with Some pq -> fi (Bq.length pq) | None -> 0.);
  g "msmr_replica_log_queue_depth" (fun () ->
      match t.stable with
      | Some ss -> fi (Bq.length ss.log_q)
      | None -> 0.);
  let sum_seals f =
    Array.fold_left (fun acc b -> acc + f (Batcher.seal_stats b)) 0 t.batchers
  in
  g "msmr_replica_bsz_now" (fun () -> fi (Atomic.get t.tuned_bsz));
  g "msmr_replica_wnd_now" (fun () -> fi (Atomic.get t.tuned_wnd));
  g "msmr_replica_batch_fill" (fun () ->
      (* cumulative mean fill ratio: payload bytes over the BSZ limit in
         force at each seal *)
      let bytes = sum_seals (fun s -> s.Batcher.sealed_bytes) in
      let limit = sum_seals (fun s -> s.Batcher.limit_bytes) in
      if limit = 0 then 0. else fi bytes /. fi limit);
  g "msmr_replica_flush_size_total" (fun () ->
      fi (sum_seals (fun s -> s.Batcher.seals_size)));
  g "msmr_replica_flush_delay_total" (fun () ->
      fi (sum_seals (fun s -> s.Batcher.seals_delay)));
  g "msmr_replica_view_changes_total" (fun () ->
      fi (Counter.get t.view_changes));
  g "msmr_replica_suspect_total" (fun () -> fi (Counter.get t.suspects));
  g "msmr_replica_reconnect_total" (fun () -> fi (t.reconnects ()));
  g "msmr_lease_held" (fun () -> if lease_held t then 1. else 0.);
  g "msmr_lease_renewals_total" (fun () -> fi (lease_renewals_count t));
  g "msmr_lease_until_ns" (fun () ->
      match t.lease_ctx with
      | Some lc -> fi (Atomic.get lc.lease_until)
      | None -> 0.);
  g "msmr_read_served_total" (fun () -> fi (Counter.get t.reads_served));
  g "msmr_read_rejected_total" (fun () -> fi (Counter.get t.reads_rejected));
  g "msmr_read_stale_served_total" (fun () -> fi (Counter.get t.stale_served));
  g "msmr_read_stale_rejected_total" (fun () ->
      fi (Counter.get t.stale_rejected));
  g "msmr_replica_reconfig_epoch" (fun () ->
      fi (Atomic.get t.membership_now).Membership.epoch);
  g "msmr_replica_reconfig_applied_total" (fun () ->
      fi (Counter.get t.reconfigs_applied));
  g "msmr_replica_reconfig_member" (fun () -> if is_member t then 1. else 0.);
  g "msmr_replica_reconfig_voters" (fun () ->
      fi (Membership.n_voters (Atomic.get t.membership_now)));
  g "msmr_replica_snapshot_install_total" (fun () ->
      fi (Counter.get t.snapshot_installs))

let unregister_metrics t =
  let labels = metric_labels t in
  List.iter (fun name -> Msmr_obs.Metrics.remove ~labels name) metric_names

let create ?(client_io_threads = 3) ?(batcher_threads = 1)
    ?(executor_threads = 1) ?(proxy_leaders = 0) ?gid
    ?(request_queue_capacity = 1000)
    ?(proposal_queue_capacity = 20) ?(durability = Ephemeral)
    ?(reconnects = fun () -> 0) ~cfg ~me ~links ~service () =
  (match Config.validate cfg with
   | Ok () -> ()
   | Error e -> invalid_arg ("Replica.create: " ^ e));
  if executor_threads < 1 then
    invalid_arg "Replica.create: executor_threads < 1";
  if proxy_leaders < 0 then invalid_arg "Replica.create: proxy_leaders < 0";
  (match gid with
   | Some g when g < 0 || g >= cfg.Config.groups ->
     invalid_arg "Replica.create: gid outside [0, cfg.groups)"
   | Some _ | None -> ());
  let expected = List.sort compare (List.filter (fun p -> p <> me)
                                      (List.init cfg.Config.n Fun.id)) in
  let got = List.sort compare (List.map fst links) in
  if expected <> got then invalid_arg "Replica.create: bad link set";
  let recovered, store =
    match durability with
    | Ephemeral -> (None, None)
    | Durable { dir; sync } ->
      (* Replay first, then open the WAL for appending. A group-tagged
         replica keeps its state in the store's per-group namespace, so
         one node's groups can share a configured directory. *)
      let r = Msmr_storage.Replica_store.recover ?gid ~dir () in
      (Some r, Some (Msmr_storage.Replica_store.openw ~sync ?gid ~dir ()))
  in
  let stable =
    match store with
    | None -> None
    | Some _ ->
      let labels = [ ("mode", "live"); ("replica", string_of_int me) ] in
      Some
        { log_q =
            (* Protocol + Retransmitter produce, StableStorage consumes. *)
            Bq.create ~lockfree:cfg.Config.lockfree ~kind:Bq.Mpmc
              ~capacity:8192;
          ss_lsn = Atomic.make 0;
          ss_stall = Atomic.make false;
          ss_hold = Msmr_obs.Metrics.histogram ~labels "msmr_replica_durable_hold_s" }
  in
  let tuned_bsz = Atomic.make cfg.Config.max_batch_bytes in
  let tuned_wnd = Atomic.make cfg.Config.window in
  (* Membership history seed: the checkpoint's configs if one was
     recovered, else the boot membership. Reconfigs decided after the
     checkpoint re-adopt during log replay (Membership_changed actions). *)
  let configs0 =
    match recovered with
    | Some { Msmr_storage.Replica_store.r_configs = (_ :: _) as cs; _ } -> cs
    | Some _ | None -> [ (0, Membership.initial cfg) ]
  in
  let batchers =
    (* With auto_tune the policies read the tuned limit through the
       atomic; without it they take the static-config path, untouched. *)
    Array.init (max 1 batcher_threads) (fun idx ->
        Batcher.create
          ?tuned_bsz:(if cfg.Config.auto_tune then Some tuned_bsz else None)
          cfg ~src:(me + (cfg.Config.n * idx)))
  in
  (* Producer/consumer discipline per edge (lock-free mode): receivers,
     FD, batchers and the scheduler all feed the dispatcher (MPMC); N
     batchers feed the Protocol thread (SPSC when N = 1); ClientIO
     workers share the RequestQueue with the batchers (MPMC); the
     DecisionQueue is strictly Protocol -> scheduler (SPSC); send, proxy
     and log queues have several producer threads (MPMC). *)
  let lf = cfg.Config.lockfree in
  let t =
    { cfg; me; gid; service;
      dispatcher_q = Bq.create ~lockfree:lf ~kind:Bq.Mpmc ~capacity:4096;
      proposal_q =
        Bq.create ~lockfree:lf
          ~kind:(if max 1 batcher_threads = 1 then Bq.Spsc else Bq.Mpmc)
          ~capacity:proposal_queue_capacity;
      request_q =
        Bq.create ~lockfree:lf ~kind:Bq.Mpmc ~capacity:request_queue_capacity;
      decision_q =
        (* Lease mode adds client threads as read producers (submit_read)
           and speculation adds the ClientIO workers (the pre-dispatch
           hook); otherwise the Protocol thread is the only producer. *)
        Bq.create ~lockfree:lf
          ~kind:
            (if cfg.Config.lease_enabled || cfg.Config.speculate then
               Bq.Mpmc
             else Bq.Spsc)
          ~capacity:1024;
      send_qs =
        Array.init cfg.Config.n (fun _ ->
            Bq.create ~lockfree:lf ~kind:Bq.Mpmc ~capacity:4096);
      proxy_q =
        (if proxy_leaders > 0 then
           Some (Bq.create ~lockfree:lf ~kind:Bq.Mpmc ~capacity:4096)
         else None);
      rtx_dq = Dq.create ();
      links;
      store;
      stable;
      recovered;
      reply_cache = Reply_cache.create ();
      client_io = None;
      exec_pool =
        (if executor_threads > 1 then
           Some
             { pool =
                 Exec_pool.create ~lockfree:lf ~steal:cfg.Config.steal
                   ~n_exec:executor_threads ();
               exec_frontier = Hashtbl.create 256;
               conflict_cache = Cmap.create ~shards:16 ();
               spec =
                 (* Speculation needs a rollback contract from the
                    service; without one the flag degrades to
                    early-scheduling-only (the conflict cache above). *)
                 (if cfg.Config.speculate
                     && Option.is_some service.Service.execute_undo
                  then
                    Some
                      { ledger = Spec_ledger.create ();
                        spec_dispatch = Counter.create ();
                        spec_confirm = Counter.create ();
                        spec_abort = Counter.create ();
                        spec_requeue = Counter.create ();
                        lead_ns_sum = Atomic.make 0;
                        lead_n = Atomic.make 0 }
                  else None) }
         else None);
      lease_ctx =
        (if cfg.Config.lease_enabled then
           Some
             { lease =
                 Lease.create cfg ~me ~view:(Option.value gid ~default:0);
               lease_until = Atomic.make 0;
               hb_frontier = Atomic.make 0;
               hb_recv_ns = Atomic.make 0;
               lease_renewals = Counter.create () }
         else None);
      fd = Failure_detector.create cfg ~me ~now_ns:(Mclock.now_ns ());
      leader_now = Atomic.make 0;
      view_now = Atomic.make 0;
      am_leader = Atomic.make false;
      executed = Counter.create ();
      decided = Counter.create ();
      send_q_drops = Counter.create ();
      sender_flushes = Counter.create ();
      proxy_fanout = Counter.create ();
      view_changes = Counter.create ();
      suspects = Counter.create ();
      reads_served = Counter.create ();
      reads_rejected = Counter.create ();
      stale_served = Counter.create ();
      stale_rejected = Counter.create ();
      membership_now = Atomic.make (snd (List.hd configs0));
      configs_now = Atomic.make configs0;
      reconfigs_applied = Counter.create ();
      snapshot_installs = Counter.create ();
      applied_iid = Atomic.make 0;
      last_apply_ns = Atomic.make 0;
      reconnects;
      running = Atomic.make true;
      threads = [];
      window_now = Atomic.make 0;
      first_undecided_now = Atomic.make 0;
      tuned_bsz;
      tuned_wnd;
      batchers;
      tune_lat_sum = 0.;
      tune_lat_n = 0 }
  in
  let on_fresh =
    (* Classify-once + speculative pre-dispatch, on the ClientIO worker
       threads. Only wired with an executor pool: the serial
       ServiceManager never classifies, so the cache would be dead
       weight, and speculation needs the lanes. *)
    match t.exec_pool with
    | None -> None
    | Some ctx ->
      let spec_on = Option.is_some ctx.spec in
      Some
        (fun (req : Client_msg.request) conflict ->
           let c =
             match conflict with
             | Some c -> c
             | None -> service.Service.conflict_keys req
           in
           Cmap.set ctx.conflict_cache req.id.client_id (req.id.seq, c);
           if spec_on && Atomic.get t.am_leader then
             (* Best-effort: a full DecisionQueue just means no
                speculation for this request — the ordered path is
                always behind it. FIFO places this Spec strictly before
                the request's own Exec (the request has not even reached
                the Batcher yet). *)
             match Bq.try_put t.decision_q (Spec { req; conflict = c }) with
             | true | false -> ()
             | exception Bq.Closed -> ())
  in
  let cio =
    Client_io.create
      ~name_prefix:(Printf.sprintf "r%d/" me)
      ~lockfree:lf ?on_fresh ~pool_size:client_io_threads
      ~request_queue:t.request_q ~reply_cache:t.reply_cache ()
  in
  t.client_io <- Some cio;
  let spawn name f =
    Worker.spawn ~name:(Printf.sprintf "r%d/%s" me name) (fun st -> f t st)
  in
  let io_threads =
    List.concat_map
      (fun (peer, link) ->
         [ Worker.spawn ~name:(Printf.sprintf "r%d/ReplicaIOSnd-%d" me peer)
             (fun st -> sender_loop t peer link st);
           Worker.spawn ~name:(Printf.sprintf "r%d/ReplicaIORcv-%d" me peer)
             (fun st -> receiver_loop t peer link st) ])
      links
  in
  let stable_storage =
    match t.stable with
    | Some ss -> [ spawn "StableStorage" (fun t st -> stable_storage_loop t ss st) ]
    | None -> []
  in
  (* Syncer: drives [Sync_periodic] on its own fixed tick. The tick is
     deliberately independent of every protocol interval — in particular
     [catchup_interval_s], which only paces the FD thread's
     Housekeeping_tick: however coarse catch-up is configured, a Durable
     replica keeps flushing its WAL every [sync_interval_s]. [Wal.sync]
     refreshes the msmr_wal_last_sync_ns gauge on every tick (even an
     empty one), so an idle-but-alive Syncer is observable. *)
  let sync_interval_s = 0.005 in
  let syncer =
    match durability with
    | Durable { sync = Msmr_storage.Wal.Sync_periodic; _ } ->
      [ spawn "Syncer" (fun t st ->
            let store = Option.get t.store in
            while Atomic.get t.running do
              Thread_state.enter st Thread_state.Other (fun () ->
                  Mclock.sleep_s sync_interval_s);
              ignore (Msmr_storage.Replica_store.sync ~st store)
            done) ]
    | Durable _ | Ephemeral -> []
  in
  let batchers =
    List.init (max 1 batcher_threads) (fun i ->
        spawn
          (if batcher_threads <= 1 then "Batcher"
           else Printf.sprintf "Batcher-%d" i)
          (batcher_loop i))
  in
  let proxies =
    match t.proxy_q with
    | None -> []
    | Some _ ->
      (* More than one ProxyLeader may reorder two multicasts of the
         same group relative to each other; the engine tolerates
         reordering (retransmission covers losses), so this only trades
         a little ordering for fan-out parallelism. *)
      List.init (max 1 proxy_leaders) (fun i ->
          Worker.spawn ~name:(Printf.sprintf "r%d/ProxyLeader-%d" me i)
            (fun st -> proxy_leader_loop t st))
  in
  let service_manager =
    match t.exec_pool with
    | None -> [ spawn "Replica" service_manager_loop ]
    | Some ctx ->
      spawn "Replica" (fun t st -> scheduler_loop t ctx st)
      :: List.init (Exec_pool.n_exec ctx.pool) (fun i ->
             Worker.spawn ~name:(Printf.sprintf "r%d/Executor-%d" me i)
               (fun st ->
                  (* No at-most-once check in the pool: the scheduler
                     already decided it (exec_frontier) in decide order. *)
                  Exec_pool.executor_loop ctx.pool ~idx:i
                    ~exec:(exec_work t ctx) ~st))
  in
  t.threads <-
    [ spawn "Protocol" protocol_loop;
      spawn "FailureDetector" fd_loop;
      spawn "Retransmitter" retransmitter_loop ]
    @ stable_storage @ proxies @ service_manager @ batchers @ io_threads
    @ syncer;
  register_metrics t;
  t

let stop t =
  if Atomic.exchange t.running false then begin
    (* A dead replica must not be reported as leader (Cluster.leader,
       Fault_controller). *)
    Atomic.set t.am_leader false;
    unregister_metrics t;
    (match t.client_io with Some cio -> Client_io.stop cio | None -> ());
    Bq.close t.request_q;
    Bq.close t.proposal_q;
    Bq.close t.dispatcher_q;
    Bq.close t.decision_q;
    (match t.stable with Some ss -> Bq.close ss.log_q | None -> ());
    (match t.proxy_q with Some pq -> Bq.close pq | None -> ());
    (* The scheduler also closes the pool on exit; closing here too
       unblocks it even if the scheduler is wedged. Close is idempotent. *)
    (match t.exec_pool with
     | Some ctx -> Exec_pool.close ctx.pool
     | None -> ());
    Array.iter Bq.close t.send_qs;
    Dq.close t.rtx_dq;
    List.iter (fun (_, (link : Transport.link)) -> link.close ()) t.links;
    Worker.join_all t.threads;
    (match t.store with
     | Some store -> Msmr_storage.Replica_store.close store
     | None -> ());
    t.client_io <- None
  end

module Cluster = struct
  type replica = t

  type t = {
    hub : Transport.Hub.t;
    replicas : replica array;
    make : int -> replica;   (* factory, reused by [restart] *)
  }

  let create ?client_io_threads ?executor_threads ?proxy_leaders ?gid
      ?durability ~cfg ~service () =
    let n = cfg.Config.n in
    let hub = Transport.Hub.create ~n () in
    let make me =
      let links =
        List.filter_map
          (fun peer ->
             if peer = me then None
             else Some (peer, Transport.Hub.link hub ~me ~peer))
          (List.init n Fun.id)
      in
      let durability =
        match durability with Some f -> f me | None -> Ephemeral
      in
      create ?client_io_threads ?executor_threads ?proxy_leaders ?gid
        ~durability ~cfg ~me ~links ~service:(service ()) ()
    in
    { hub; replicas = Array.init n make; make }

  let replicas t = t.replicas
  let hub t = t.hub

  let kill t i = stop t.replicas.(i)

  let restart t i =
    (* The dying replica closed its inbound hub queues; give the new
       incarnation fresh ones, then rebuild it through the stored
       factory. With Durable durability the factory re-runs
       [Replica_store.recover] on the same directory — the WAL crash
       recovery path. *)
    stop t.replicas.(i);
    Transport.Hub.renew t.hub i;
    t.replicas.(i) <- t.make i;
    t.replicas.(i)

  let leader t =
    match Array.find_opt is_leader t.replicas with
    | Some r -> r
    | None -> t.replicas.(0)

  let await_leader ?(timeout_s = 5.0) t =
    let deadline = Int64.add (Mclock.now_ns ()) (Mclock.ns_of_s timeout_s) in
    let rec go () =
      match Array.find_opt is_leader t.replicas with
      | Some r -> r
      | None ->
        if Int64.compare (Mclock.now_ns ()) deadline > 0 then
          failwith "Cluster.await_leader: timeout"
        else begin
          Mclock.sleep_s 0.005;
          go ()
        end
    in
    go ()

  (* Drive one membership step to adoption: keep re-submitting [step]
     (computed against the acting leader's current epoch) until [pred]
     holds on the leader. Re-submission is safe — [propose_reconfig]
     rejects stale epochs and concurrent reconfigs, and an adopted step
     makes [step] return [None]. *)
  let drive ?(timeout_s = 10.0) ~what t step pred =
    let deadline = Int64.add (Mclock.now_ns ()) (Mclock.ns_of_s timeout_s) in
    let rec go () =
      let ld = leader t in
      if pred (membership ld) then ()
      else begin
        if Int64.compare (Mclock.now_ns ()) deadline > 0 then
          failwith (Printf.sprintf "Cluster.%s: timeout" what);
        (match step (membership ld) with
         | Some m -> request_reconfig ld m
         | None -> ());
        Mclock.sleep_s 0.01;
        go ()
      end
    in
    go ()

  let caught_up t i =
    (* The joiner's log frontier is within one pipeline window of the
       leader's: close enough that promotion cannot stall the quorum. *)
    let ld = leader t in
    me ld = i
    || first_undecided ld - first_undecided t.replicas.(i)
       <= t.replicas.(i).cfg.Config.window

  let join ?timeout_s ?(promote = true) t i =
    (* Phase 1: enter as a non-voting learner — receives the decide
       stream (and snapshot-based state transfer via catch-up) without
       counting toward any quorum. *)
    drive ?timeout_s ~what:"join" t
      (fun m -> Membership.add_learner m i)
      (fun m -> Membership.is_member m i);
    if promote then begin
      (* Phase 2: wait out state transfer, then enter the voting set. *)
      let deadline_s = Option.value timeout_s ~default:10.0 in
      let deadline =
        Int64.add (Mclock.now_ns ()) (Mclock.ns_of_s deadline_s)
      in
      while not (caught_up t i) do
        if Int64.compare (Mclock.now_ns ()) deadline > 0 then
          failwith "Cluster.join: state transfer timeout";
        Mclock.sleep_s 0.01
      done;
      drive ?timeout_s ~what:"promote" t
        (fun m -> Membership.promote m i)
        (fun m -> Membership.is_voter m i)
    end

  let decommission ?timeout_s t i =
    drive ?timeout_s ~what:"decommission" t
      (fun m -> Membership.remove m i)
      (fun m -> not (Membership.is_member m i))

  let stop t =
    Array.iter stop t.replicas;
    Transport.Hub.close t.hub
end
