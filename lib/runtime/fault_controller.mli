(** Orchestrated fault injection against a live in-process cluster.

    Wraps {!Replica.Cluster} and its {!Transport.Hub} with the fault
    vocabulary the robustness tests and [bench005] drive: crash/restart
    a replica in place, sever and heal individual links, isolate a node
    from everyone. All operations are crash-shaped — peers observe dead
    connections (silently dropped sends), never errors — matching how a
    real process death looks through TCP.

    Restarting a [Durable] replica re-enters {!Replica.create}'s WAL
    recovery, so the kill/restart pair exercises the same code path as a
    real crash-reboot. *)

type t

val create : cluster:Replica.Cluster.t -> unit -> t

val kill : t -> int -> unit
(** Crash replica [i]: stop all its threads, close its links. *)

val restart : t -> int -> Replica.t
(** Bring replica [i] back (fresh hub queues, same construction
    parameters; WAL recovery under [Durable]). Returns the new
    incarnation. *)

val kill_leader : t -> int
(** {!kill} whichever replica currently claims leadership (replica 0 if
    none does) and return its id, for a later {!restart}. *)

val sever_link : t -> a:int -> b:int -> unit
(** Cut the [a]<->[b] link in both directions; all other links keep
    flowing (an asymmetric-reachability fault when [a] and [b] can both
    still reach a third node). *)

val heal_link : t -> a:int -> b:int -> unit

val isolate : t -> int -> unit
(** Partition node [i] from every peer (its frames drop both ways). *)

val rejoin : t -> int -> unit

val join : ?timeout_s:float -> ?promote:bool -> t -> int -> unit
(** Grow the membership: order node [i] in as a learner, wait for
    snapshot-based state transfer, then promote it to voter (unless
    [promote = false]). See {!Replica.Cluster.join}. *)

val decommission : ?timeout_s:float -> t -> int -> unit
(** Shrink the membership: order node [i]'s removal and wait for
    adoption; the node keeps running but is epoch-fenced. See
    {!Replica.Cluster.decommission}. *)

val kills : t -> int
val restarts : t -> int
val severs : t -> int
val joins : t -> int
val decommissions : t -> int
