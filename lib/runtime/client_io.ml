module Bq = Msmr_platform.Channel
module Backoff = Msmr_platform.Backoff
module Mpsc = Msmr_platform.Mpsc_queue
module Cmap = Msmr_platform.Concurrent_map
module Worker = Msmr_platform.Worker
module Thread_state = Msmr_platform.Thread_state
module Mclock = Msmr_platform.Mclock
module Client_msg = Msmr_wire.Client_msg
module Codec = Msmr_wire.Codec

type sink = bytes -> unit
type batch_sink = bytes list -> unit

type worker_ctx = {
  ingress : (bytes * Service.conflict option * sink * batch_sink option) Bq.t;
  replies : (Client_msg.reply * sink * batch_sink option) Mpsc.t;
}

type t = {
  workers : worker_ctx array;
  threads : Worker.t list;
  (* client_id -> (worker index, reply sinks); written by ClientIO threads,
     read by the ServiceManager. *)
  routes : (int, int * sink * batch_sink option) Cmap.t;
  request_queue : Client_msg.request Bq.t;
  reply_cache : Reply_cache.t;
  (* Ingress hook for the speculative path: called once per fresh request
     (no cached reply, not stale) with the router's conflict class when
     the submitter carried one. Runs on the ClientIO worker thread. *)
  on_fresh : (Client_msg.request -> Service.conflict option -> unit) option;
  (* Registry counters (docs/OBSERVABILITY.md): atomic adds, no locks. *)
  m_labels : Msmr_obs.Metrics.labels;
  m_requests : Msmr_obs.Metrics.counter;
  m_replies : Msmr_obs.Metrics.counter;
  m_malformed : Msmr_obs.Metrics.counter;
  m_flushes : Msmr_obs.Metrics.counter;
}

let worker_of_client t client_id =
  client_id mod Array.length t.workers

(* Drain every queued reply in one pass, grouping consecutive replies to
   the same connection so a connection with a [batch_sink] gets the whole
   run in a single write (Frame.write_many → one write(2)). Groups
   preserve per-connection FIFO order; one registry "flush" is counted
   per non-empty pass. *)
let drain_replies t (ctx : worker_ctx) =
  let rec collect acc =
    match Mpsc.pop ctx.replies with
    | Some item -> collect (item :: acc)
    | None -> List.rev acc
  in
  match collect [] with
  | [] -> false
  | items ->
    (* (sink, batch_sink, payloads in reverse), newest group first. *)
    let groups : (sink * batch_sink option * bytes list ref) list ref =
      ref []
    in
    List.iter
      (fun (reply, sink, many) ->
         let payload = Client_msg.reply_to_bytes reply in
         Msmr_obs.Metrics.incr t.m_replies;
         match List.find_opt (fun (s, _, _) -> s == sink) !groups with
         | Some (_, _, payloads) -> payloads := payload :: !payloads
         | None -> groups := (sink, many, ref [ payload ]) :: !groups)
      items;
    List.iter
      (fun (sink, many, payloads) ->
         match (many, List.rev !payloads) with
         | Some write_many, (_ :: _ :: _ as ps) -> write_many ps
         | _, ps -> List.iter sink ps)
      (List.rev !groups);
    Msmr_obs.Metrics.incr t.m_flushes;
    true

(* One ClientIO thread: drain replies eagerly (they are cheap and the
   ServiceManager must never wait), push at most one decoded request at a
   time into the RequestQueue, and only then accept new ingress. *)
let worker_loop t idx st =
  let ctx = t.workers.(idx) in
  let pending : Client_msg.request option ref = ref None in
  let bo = Backoff.create ~max_sleep_s:0.0005 () in
  let running = ref true in
  while !running do
    (* 1. Replies out (coalesced per connection). *)
    ignore (drain_replies t ctx);
    (* 2. Back-pressured hand-off to the Batcher. *)
    (match !pending with
     | Some req ->
       if Bq.try_put t.request_queue req then begin
         pending := None;
         Backoff.reset bo
       end
       else
         (* RequestQueue full: the pipeline is saturated; stop pulling
            new requests (back-pressure) but keep replies flowing. *)
         Backoff.once ~st bo
     | None -> (
         (* 3. New requests in. The short timeout batches reply drains:
            on loaded single-core hosts, waking per reply costs more in
            context switches than it saves in latency. *)
         match Bq.take_timeout ~st ctx.ingress ~timeout_s:0.001 with
         | None -> ()
         | Some (raw, conflict, sink, many) -> (
             match Client_msg.request_of_bytes raw with
             | req -> (
                 Msmr_obs.Metrics.incr t.m_requests;
                 match Reply_cache.lookup t.reply_cache req.id with
                 | Reply_cache.Cached result ->
                   sink (Client_msg.reply_to_bytes { id = req.id; result })
                 | Reply_cache.Stale -> ()
                 | Reply_cache.Fresh ->
                   (* Hook before the Batcher hand-off: the pre-dispatch
                      event must precede the request's own decide in the
                      DecisionQueue, and queue FIFO gives exactly that. *)
                   (match t.on_fresh with
                    | Some f -> f req conflict
                    | None -> ());
                   Cmap.set t.routes req.id.client_id (idx, sink, many);
                   pending := Some req)
             | exception (Codec.Underflow | Codec.Malformed _) ->
               (* Malformed request: drop it, as a server would drop a
                  corrupt frame. *)
               Msmr_obs.Metrics.incr t.m_malformed)
         | exception Bq.Closed -> running := false))
  done;
  (* Shutdown: flush any replies already routed to us. *)
  ignore (drain_replies t ctx)

let metric_names =
  [ "msmr_client_io_requests_total"; "msmr_client_io_replies_total";
    "msmr_client_io_malformed_total"; "msmr_client_io_flushes" ]

let create ?(name_prefix = "") ?(lockfree = true) ?on_fresh ~pool_size
    ~request_queue ~reply_cache () =
  if pool_size <= 0 then invalid_arg "Client_io.create: pool_size <= 0";
  let workers =
    (* Ingress is many connection threads -> one worker: MPMC ring. *)
    Array.init pool_size (fun _ ->
        { ingress = Bq.create ~lockfree ~kind:Bq.Mpmc ~capacity:256;
          replies = Mpsc.create () })
  in
  let m_labels =
    [ ("mode", "live");
      ("pool", if name_prefix = "" then "default" else name_prefix) ]
  in
  let t =
    { workers; threads = []; routes = Cmap.create ~shards:16 ();
      request_queue; reply_cache; on_fresh;
      m_labels;
      m_requests =
        Msmr_obs.Metrics.counter ~labels:m_labels "msmr_client_io_requests_total";
      m_replies =
        Msmr_obs.Metrics.counter ~labels:m_labels "msmr_client_io_replies_total";
      m_malformed =
        Msmr_obs.Metrics.counter ~labels:m_labels
          "msmr_client_io_malformed_total";
      m_flushes =
        Msmr_obs.Metrics.counter ~labels:m_labels "msmr_client_io_flushes" }
  in
  let threads =
    List.init pool_size (fun i ->
        Worker.spawn ~name:(Printf.sprintf "%sClientIO-%d" name_prefix i) (fun st ->
            worker_loop t i st))
  in
  { t with threads }

let submit ?reply_many ?conflict t ~raw ~reply_to =
  (* Cheap peek at the client id (first i32) to pick the owning worker,
     without a full decode — the worker does that. *)
  let client_id =
    if Bytes.length raw >= 4 then Int32.to_int (Bytes.get_int32_be raw 0)
    else 0
  in
  let idx = worker_of_client t (abs client_id) in
  Bq.put t.workers.(idx).ingress (raw, conflict, reply_to, reply_many)

let deliver_reply t (reply : Client_msg.reply) =
  match Cmap.find_opt t.routes reply.id.client_id with
  | Some (idx, sink, many) -> Mpsc.push t.workers.(idx).replies (reply, sink, many)
  | None -> ()

let ingress_length t =
  Array.fold_left (fun acc w -> acc + Bq.length w.ingress) 0 t.workers

let stop t =
  Array.iter (fun w -> Bq.close w.ingress) t.workers;
  Worker.join_all t.threads;
  List.iter
    (fun name -> Msmr_obs.Metrics.remove ~labels:t.m_labels name)
    metric_names
