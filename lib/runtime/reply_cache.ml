module Cmap = Msmr_platform.Concurrent_map
module Client_msg = Msmr_wire.Client_msg

(* [committed] is the client-visible cache; [staged] holds replies of
   speculative executions that have not confirmed yet. The split keeps
   at-most-once semantics honest under speculation: a staged reply must
   never short-circuit a client retry (the frame might still abort), so
   [lookup]/[already_executed] consult [committed] only. *)
type t = {
  committed : (int, int * bytes) Cmap.t;
  staged : (int, int * bytes) Cmap.t;
}

type lookup =
  | Fresh
  | Cached of bytes
  | Stale

let create ?(shards = 16) () : t =
  { committed = Cmap.create ~shards (); staged = Cmap.create ~shards () }

let lookup t (id : Client_msg.request_id) =
  match Cmap.find_opt t.committed id.client_id with
  | Some (seq, reply) when seq = id.seq -> Cached reply
  | Some (seq, _) when seq > id.seq -> Stale
  | Some _ | None -> Fresh

let store t (id : Client_msg.request_id) reply =
  Cmap.update t.committed id.client_id (function
    | Some (seq, old) when seq >= id.seq -> Some (seq, old)
    | Some _ | None -> Some (id.seq, reply))

let already_executed t id =
  match lookup t id with Fresh -> false | Cached _ | Stale -> true

let stage t (id : Client_msg.request_id) reply =
  Cmap.set t.staged id.client_id (id.seq, reply)

let peek t (id : Client_msg.request_id) =
  match Cmap.find_opt t.staged id.client_id with
  | Some (seq, reply) when seq = id.seq -> Some reply
  | Some _ | None -> None

let confirm t (id : Client_msg.request_id) =
  match peek t id with
  | Some reply ->
    Cmap.remove t.staged id.client_id;
    store t id reply;
    Some reply
  | None -> None

let unstage t (id : Client_msg.request_id) =
  match Cmap.find_opt t.staged id.client_id with
  | Some (seq, _) when seq = id.seq -> Cmap.remove t.staged id.client_id
  | Some _ | None -> ()

let staged_size t = Cmap.length t.staged
let size t = Cmap.length t.committed
