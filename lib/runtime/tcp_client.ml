module Client_msg = Msmr_wire.Client_msg
module Mclock = Msmr_platform.Mclock

type t = {
  addrs : Unix.sockaddr array;
  client_id : int;
  timeout_s : float;
  mutable fd : Unix.file_descr option;
  mutable target : int;              (* index into [addrs] *)
  mutable seq : int;
  mutable retry_count : int;
  mutable redirect_count : int;      (* target rotations *)
  mutable connect_pause : float;     (* current reconnect backoff *)
  rng : Random.State.t;
}

let connect_pause_base = 0.02
let connect_pause_cap = 0.5

let create ?(timeout_s = 1.0) ~addrs ~client_id () =
  if addrs = [] then invalid_arg "Tcp_client.create: no addresses";
  { addrs = Array.of_list addrs; client_id; timeout_s; fd = None; target = 0;
    seq = 0; retry_count = 0; redirect_count = 0;
    connect_pause = connect_pause_base;
    rng = Random.State.make [| client_id; 0x746370 |] }

let disconnect t =
  match t.fd with
  | Some fd ->
    t.fd <- None;
    (try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ()

let close = disconnect
let retries t = t.retry_count
let redirects t = t.redirect_count

let rec connected t ~attempts_left =
  match t.fd with
  | Some fd -> fd
  | None ->
    if attempts_left = 0 then failwith "Tcp_client: no replica reachable";
    let addr = t.addrs.(t.target) in
    let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
    (match Unix.connect fd addr with
     | () ->
       Unix.setsockopt fd Unix.TCP_NODELAY true;
       t.fd <- Some fd;
       t.connect_pause <- connect_pause_base;
       fd
     | exception Unix.Unix_error _ ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       t.target <- (t.target + 1) mod Array.length t.addrs;
       t.redirect_count <- t.redirect_count + 1;
       (* Capped exponential backoff with jitter: during an outage the
          whole client population must not hammer the surviving
          replicas in lockstep at a fixed 50 ms beat. *)
       let pause = t.connect_pause in
       Mclock.sleep_s (pause +. Random.State.float t.rng (pause /. 2.));
       t.connect_pause <- Float.min connect_pause_cap (pause *. 2.);
       connected t ~attempts_left:(attempts_left - 1))

(* Wait for a reply frame with [deadline]; [None] on timeout, raises on a
   broken connection. *)
let read_reply fd ~deadline =
  let rec go () =
    let now = Unix.gettimeofday () in
    let budget = deadline -. now in
    if budget <= 0. then None
    else begin
      match Unix.select [ fd ] [] [] budget with
      | [], _, _ -> None
      | _ -> (
          match Msmr_wire.Frame.read fd with
          | Some raw -> Some (Client_msg.reply_of_bytes raw)
          | None -> raise End_of_file
          | exception Msmr_wire.Codec.Malformed _ -> go ())
    end
  in
  go ()

let call t payload =
  t.seq <- t.seq + 1;
  let seq = t.seq in
  let raw =
    Client_msg.request_to_bytes
      { id = { client_id = t.client_id; seq }; payload }
  in
  let rec attempt () =
    let rotate_and_retry () =
      t.retry_count <- t.retry_count + 1;
      t.redirect_count <- t.redirect_count + 1;
      disconnect t;
      t.target <- (t.target + 1) mod Array.length t.addrs;
      attempt ()
    in
    match connected t ~attempts_left:(3 * Array.length t.addrs) with
    | fd -> (
        match Msmr_wire.Frame.write fd raw with
        | exception (Unix.Unix_error _ | Sys_error _) -> rotate_and_retry ()
        | () -> (
            let deadline = Unix.gettimeofday () +. t.timeout_s in
            let rec await () =
              match read_reply fd ~deadline with
              | Some reply when reply.id.seq = seq -> reply.result
              | Some _ ->
                (* A late reply to an earlier retried request. *)
                await ()
              | None -> rotate_and_retry ()
            in
            match await () with
            | result -> result
            | exception (End_of_file | Unix.Unix_error _) ->
              rotate_and_retry ()))
  in
  attempt ()
