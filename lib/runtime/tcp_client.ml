module Client_msg = Msmr_wire.Client_msg
module Mclock = Msmr_platform.Mclock

type t = {
  mutable addrs : Unix.sockaddr array;
  client_id : int;
  timeout_s : float;
  mutable fd : Unix.file_descr option;
  mutable target : int;              (* index into [addrs] *)
  mutable seq : int;
  mutable retry_count : int;
  mutable redirect_count : int;      (* target rotations *)
  mutable read_redirect_count : int; (* read fast-path bounces *)
  mutable connect_pause : float;     (* current reconnect backoff *)
  rng : Random.State.t;
}

let connect_pause_base = 0.02
let connect_pause_cap = 0.5

let create ?(timeout_s = 1.0) ~addrs ~client_id () =
  if addrs = [] then invalid_arg "Tcp_client.create: no addresses";
  { addrs = Array.of_list addrs; client_id; timeout_s; fd = None; target = 0;
    seq = 0; retry_count = 0; redirect_count = 0; read_redirect_count = 0;
    connect_pause = connect_pause_base;
    rng = Random.State.make [| client_id; 0x746370 |] }

let disconnect t =
  match t.fd with
  | Some fd ->
    t.fd <- None;
    (try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ()

let close = disconnect
let retries t = t.retry_count
let redirects t = t.redirect_count
let read_redirects t = t.read_redirect_count

(* Membership changed: refresh the endpoint set. The current connection
   survives only if the replica it points at kept its position — any
   other change re-targets from the head of the new list, and the usual
   redirect plumbing steers back to the leader from there. *)
let update_addrs t addrs =
  if addrs = [] then invalid_arg "Tcp_client.update_addrs: no addresses";
  let cur =
    if t.target < Array.length t.addrs then Some t.addrs.(t.target) else None
  in
  t.addrs <- Array.of_list addrs;
  match cur with
  | Some addr
    when t.target < Array.length t.addrs && t.addrs.(t.target) = addr ->
    ()
  | _ ->
    disconnect t;
    t.target <- 0

let rec connected t ~attempts_left =
  match t.fd with
  | Some fd -> fd
  | None ->
    if attempts_left = 0 then failwith "Tcp_client: no replica reachable";
    let addr = t.addrs.(t.target) in
    let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
    (match Unix.connect fd addr with
     | () ->
       Unix.setsockopt fd Unix.TCP_NODELAY true;
       t.fd <- Some fd;
       t.connect_pause <- connect_pause_base;
       fd
     | exception Unix.Unix_error _ ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       t.target <- (t.target + 1) mod Array.length t.addrs;
       t.redirect_count <- t.redirect_count + 1;
       (* Capped exponential backoff with jitter: during an outage the
          whole client population must not hammer the surviving
          replicas in lockstep at a fixed 50 ms beat. *)
       let pause = t.connect_pause in
       Mclock.sleep_s (pause +. Random.State.float t.rng (pause /. 2.));
       t.connect_pause <- Float.min connect_pause_cap (pause *. 2.);
       connected t ~attempts_left:(attempts_left - 1))

(* Wait for a raw frame with [deadline]; [None] on timeout, raises on a
   broken connection. *)
let read_frame fd ~deadline =
  let go () =
    let now = Unix.gettimeofday () in
    let budget = deadline -. now in
    if budget <= 0. then None
    else begin
      match Unix.select [ fd ] [] [] budget with
      | [], _, _ -> None
      | _ -> (
          match Msmr_wire.Frame.read fd with
          | Some raw -> Some raw
          | None -> raise End_of_file)
    end
  in
  go ()

(* Wait for a write reply, skipping stray read-reply frames (late answers
   to an earlier retried read share the connection). *)
let read_reply fd ~deadline =
  let rec go () =
    match read_frame fd ~deadline with
    | None -> None
    | Some raw -> (
        match Client_msg.reply_of_bytes raw with
        | reply -> Some reply
        | exception
            (Msmr_wire.Codec.Malformed _ | Msmr_wire.Codec.Underflow) ->
          go ())
  in
  go ()

let call t payload =
  t.seq <- t.seq + 1;
  let seq = t.seq in
  let raw =
    Client_msg.request_to_bytes
      { id = { client_id = t.client_id; seq }; payload }
  in
  let rec attempt () =
    let rotate_and_retry () =
      t.retry_count <- t.retry_count + 1;
      t.redirect_count <- t.redirect_count + 1;
      disconnect t;
      t.target <- (t.target + 1) mod Array.length t.addrs;
      attempt ()
    in
    match connected t ~attempts_left:(3 * Array.length t.addrs) with
    | fd -> (
        match Msmr_wire.Frame.write fd raw with
        | exception (Unix.Unix_error _ | Sys_error _) -> rotate_and_retry ()
        | () -> (
            let deadline = Unix.gettimeofday () +. t.timeout_s in
            let rec await () =
              match read_reply fd ~deadline with
              | Some reply when reply.id.seq = seq -> reply.result
              | Some _ ->
                (* A late reply to an earlier retried request. *)
                await ()
              | None -> rotate_and_retry ()
            in
            match await () with
            | result -> result
            | exception (End_of_file | Unix.Unix_error _) ->
              rotate_and_retry ()))
  in
  attempt ()

(* --- Read fast path ------------------------------------------------- *)

exception Reads_unsupported

(* The address list is assumed to be in node-id order: a replica's
   [Not_leaseholder]/[Too_stale] hint names the node id it believes
   leads, and the client steers by indexing [addrs] with it. *)
let do_read t ~staleness_ns payload =
  t.seq <- t.seq + 1;
  let seq = t.seq in
  let raw =
    Client_msg.read_to_bytes
      { id = { client_id = t.client_id; seq }; staleness_ns; payload }
  in
  let n = Array.length t.addrs in
  (* Stale reads can be served anywhere: if no connection is up yet,
     spread the client population over the cluster instead of piling on
     the leader. *)
  if staleness_ns >= 0 && t.fd = None then t.target <- t.client_id mod n;
  let rec attempt pause =
    let bounce hint =
      t.read_redirect_count <- t.read_redirect_count + 1;
      disconnect t;
      if hint >= 0 && hint < n && hint <> t.target then t.target <- hint
      else t.target <- (t.target + 1) mod n;
      (* Same capped jittered backoff as reconnection: a lease
         mid-renewal answers within one ping interval, not instantly. *)
      Mclock.sleep_s (pause +. Random.State.float t.rng (pause /. 2.));
      attempt (Float.min connect_pause_cap (pause *. 2.))
    in
    let rotate_and_retry () =
      t.retry_count <- t.retry_count + 1;
      bounce (-1)
    in
    match connected t ~attempts_left:(3 * n) with
    | fd -> (
        match Msmr_wire.Frame.write fd raw with
        | exception (Unix.Unix_error _ | Sys_error _) -> rotate_and_retry ()
        | () -> (
            let deadline = Unix.gettimeofday () +. t.timeout_s in
            let rec await () =
              match read_frame fd ~deadline with
              | None -> `Timeout
              | Some frame -> (
                  match Client_msg.read_reply_of_bytes frame with
                  | rr when rr.rid.seq = seq -> `Reply rr.status
                  | _ -> await ()  (* late reply to an earlier request *)
                  | exception
                      ( Msmr_wire.Codec.Malformed _
                      | Msmr_wire.Codec.Underflow ) ->
                    await ())
            in
            match await () with
            | `Reply (Client_msg.Read_ok result) -> result
            | `Reply Client_msg.Read_unsupported -> raise Reads_unsupported
            | `Reply
                ( Client_msg.Not_leaseholder hint
                | Client_msg.Too_stale hint ) ->
              bounce hint
            | `Timeout -> rotate_and_retry ()
            | exception (End_of_file | Unix.Unix_error _) ->
              rotate_and_retry ()))
  in
  attempt connect_pause_base

let read t payload = do_read t ~staleness_ns:Client_msg.linearizable payload

let read_stale t ~staleness_s payload =
  if staleness_s < 0. then
    invalid_arg "Tcp_client.read_stale: staleness_s < 0";
  do_read t ~staleness_ns:(int_of_float (staleness_s *. 1e9)) payload
