module Mclock = Msmr_platform.Mclock

(* The hello carries the dialer's node id and, since multi-group Paxos,
   its consensus group id: each group runs its own mesh on its own
   address set, and the tag rejects a dialer from another group that
   reached the wrong listener (a misconfigured address map would
   otherwise silently cross-wire two groups' Paxos traffic). A hello
   without the group field (the pre-multi-group frame) is read as group
   0, so old and new peers interoperate in single-group deployments. *)
let hello_frame ~gid me =
  let w = Msmr_wire.Codec.W.create ~initial:8 () in
  Msmr_wire.Codec.W.i32 w me;
  Msmr_wire.Codec.W.i32 w gid;
  Msmr_wire.Codec.W.contents w

let id_of_hello b =
  let r = Msmr_wire.Codec.R.of_bytes b in
  let id = Msmr_wire.Codec.R.i32 r in
  let gid =
    if Msmr_wire.Codec.R.remaining r > 0 then Msmr_wire.Codec.R.i32 r else 0
  in
  Msmr_wire.Codec.R.expect_end r;
  (id, gid)

(* One peer's connection state. [conn] is the current physical
   connection (wrapped as a Transport.Tcp link, whose own error handling
   turns a dead socket into dropped sends / [None] reads); it flips to
   [None] when the reader observes the death, and back to [Some] when
   the dialer or acceptor installs a replacement. *)
type slot = {
  peer : int;
  mu : Mutex.t;
  cv : Condition.t;
  mutable conn : Transport.link option;
  mutable ever_connected : bool;
  mutable closed : bool;          (* facade closed: stop reconnecting *)
}

type t = {
  me : int;
  gid : int;                      (* consensus group this mesh carries *)
  listener : Unix.file_descr;
  mutable slots : (int * slot) list;  (* every peer <> me *)
  slots_mu : Mutex.t;             (* orders add_peer/remove_peer *)
  closing : bool Atomic.t;
  reconnects : int Atomic.t;
  mutable threads : Thread.t list;
}

let reconnects t = Atomic.get t.reconnects

let install t slot link =
  Mutex.lock slot.mu;
  if slot.closed || Atomic.get t.closing then begin
    Mutex.unlock slot.mu;
    link.Transport.close ()
  end
  else begin
    (match slot.conn with Some old -> old.Transport.close () | None -> ());
    slot.conn <- Some link;
    if slot.ever_connected then Atomic.incr t.reconnects;
    slot.ever_connected <- true;
    Condition.broadcast slot.cv;
    Mutex.unlock slot.mu
  end

(* Called by the reader when [link]'s recv returned [None]: clear the
   slot (if this link is still the installed one) so senders stop using
   it and the dialer knows to redial. *)
let retire slot link =
  Mutex.lock slot.mu;
  (match slot.conn with
   | Some c when c == link ->
     slot.conn <- None;
     Condition.broadcast slot.cv
   | _ -> ());
  Mutex.unlock slot.mu;
  link.Transport.close ()

let facade t slot =
  let current () =
    Mutex.lock slot.mu;
    let c = slot.conn in
    Mutex.unlock slot.mu;
    c
  in
  let send_bytes b =
    (* While disconnected, frames drop silently — exactly how a broken
       TCP link looks to the sender thread; the retransmitter covers the
       gap until the dialer brings the link back. *)
    match current () with
    | Some c -> c.Transport.send_bytes b
    | None -> ()
  in
  let send_many bs =
    match current () with
    | Some c -> c.Transport.send_many bs
    | None -> ()
  in
  let rec recv_bytes () =
    Mutex.lock slot.mu;
    while
      slot.conn = None && not slot.closed && not (Atomic.get t.closing)
    do
      Condition.wait slot.cv slot.mu
    done;
    let c = slot.conn in
    Mutex.unlock slot.mu;
    match c with
    | None -> None                          (* closed for good *)
    | Some c -> (
        match c.Transport.recv_bytes () with
        | Some _ as frame -> frame
        | None ->
          (* Connection died; park until a replacement is installed
             rather than reporting end-of-link — reconnection is this
             module's whole point. *)
          retire slot c;
          recv_bytes ())
  in
  let close () =
    Mutex.lock slot.mu;
    slot.closed <- true;
    let c = slot.conn in
    slot.conn <- None;
    Condition.broadcast slot.cv;
    Mutex.unlock slot.mu;
    match c with Some c -> c.Transport.close () | None -> ()
  in
  { Transport.send_bytes; send_many; recv_bytes; close }

let acceptor_loop t =
  let continue = ref true in
  while !continue && not (Atomic.get t.closing) do
    match Unix.accept t.listener with
    | fd, _ -> (
        Unix.setsockopt fd Unix.TCP_NODELAY true;
        match Msmr_wire.Frame.read fd with
        | Some hello -> (
            let id, gid = id_of_hello hello in
            if gid <> t.gid then
              (* Wrong group: never splice another group's Paxos stream
                 into this mesh. *)
              try Unix.close fd with Unix.Unix_error _ -> ()
            else begin
              (* [slots] mutates under add_peer/remove_peer mid-run. *)
              Mutex.lock t.slots_mu;
              let slot = List.assoc_opt id t.slots in
              Mutex.unlock t.slots_mu;
              match slot with
              | Some slot -> install t slot (Transport.Tcp.link_of_fd fd)
              | None -> ( try Unix.close fd with Unix.Unix_error _ -> ())
            end)
        | None | (exception _) -> (
            try Unix.close fd with Unix.Unix_error _ -> ()))
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception _ -> continue := false      (* listener closed *)
  done

(* Dial [slot.peer] whenever the slot is empty, with capped exponential
   backoff plus jitter so a flapping pair of replicas does not
   synchronise into a reconnect storm. Runs for the mesh's lifetime —
   this is what turns a mid-run link death into a reconnection instead
   of a permanent hole. *)
let dialer_loop t slot addr =
  let base = 0.05 and cap = 1.0 in
  let rng = Random.State.make [| (t.me * 7919) + slot.peer; 0x6d657368 |] in
  let backoff = ref base in
  let finished () = slot.closed || Atomic.get t.closing in
  while not (finished ()) do
    (* Wait until the slot needs a connection. *)
    Mutex.lock slot.mu;
    while slot.conn <> None && not (finished ()) do
      Condition.wait slot.cv slot.mu
    done;
    Mutex.unlock slot.mu;
    if not (finished ()) then begin
      match Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 with
      | exception Unix.Unix_error _ -> Mclock.sleep_s !backoff
      | fd -> (
          match
            Unix.connect fd addr;
            Unix.setsockopt fd Unix.TCP_NODELAY true;
            Msmr_wire.Frame.write fd (hello_frame ~gid:t.gid t.me)
          with
          | () ->
            install t slot (Transport.Tcp.link_of_fd fd);
            backoff := base
          | exception _ ->
            (try Unix.close fd with Unix.Unix_error _ -> ());
            Mclock.sleep_s (!backoff +. Random.State.float rng (!backoff /. 2.));
            backoff := Float.min cap (!backoff *. 2.))
    end
  done

let create ?(connect_timeout_s = 30.) ?(gid = 0) ~me ~addrs () =
  let my_addr = List.assoc me addrs in
  let listener =
    Unix.socket (Unix.domain_of_sockaddr my_addr) Unix.SOCK_STREAM 0
  in
  Unix.setsockopt listener Unix.SO_REUSEADDR true;
  Unix.bind listener my_addr;
  Unix.listen listener 8;
  let slots =
    List.filter_map
      (fun (id, _) ->
         if id = me then None
         else
           Some
             ( id,
               { peer = id;
                 mu = Mutex.create ();
                 cv = Condition.create ();
                 conn = None;
                 ever_connected = false;
                 closed = false } ))
      addrs
  in
  let t =
    { me;
      gid;
      listener;
      slots;
      slots_mu = Mutex.create ();
      closing = Atomic.make false;
      reconnects = Atomic.make 0;
      threads = [] }
  in
  let acceptor = Thread.create acceptor_loop t in
  (* Lower-id peers listen; we dial them. Higher-id peers dial us. *)
  let dialers =
    List.filter_map
      (fun (id, addr) ->
         if id < me then
           Some (Thread.create (fun () -> dialer_loop t (List.assoc id slots) addr) ())
         else None)
      addrs
  in
  t.threads <- acceptor :: dialers;
  (* Block until the whole mesh is up once, as [establish] always did —
     replicas expect working links from the first send. *)
  let deadline =
    Int64.add (Mclock.now_ns ()) (Mclock.ns_of_s connect_timeout_s)
  in
  let all_up () =
    List.for_all
      (fun (_, s) ->
         Mutex.lock s.mu;
         let up = s.conn <> None in
         Mutex.unlock s.mu;
         up)
      slots
  in
  while not (all_up ()) do
    if Int64.compare (Mclock.now_ns ()) deadline > 0 then begin
      Atomic.set t.closing true;
      (try Unix.close listener with Unix.Unix_error _ -> ());
      failwith "Tcp_mesh: cannot complete mesh within connect timeout"
    end;
    Mclock.sleep_s 0.02
  done;
  t

let links t = List.map (fun (id, slot) -> (id, facade t slot)) t.slots

(* Online membership change: splice a peer's slot in (or back in)
   mid-run, and retire a decommissioned one. The universe of node ids is
   fixed; what changes is which ids currently hold a live slot. *)
let add_peer t ~peer ~addr =
  if peer = t.me then invalid_arg "Tcp_mesh.add_peer: peer = me";
  Mutex.lock t.slots_mu;
  let slot, need_dialer =
    match List.assoc_opt peer t.slots with
    | Some slot ->
      (* Re-admission after [remove_peer]: reopen the slot so the
         acceptor can install a fresh connection; the old dialer thread
         exited when the slot closed, so start a new one. *)
      Mutex.lock slot.mu;
      let was_closed = slot.closed in
      slot.closed <- false;
      Condition.broadcast slot.cv;
      Mutex.unlock slot.mu;
      (slot, was_closed)
    | None ->
      let slot =
        { peer;
          mu = Mutex.create ();
          cv = Condition.create ();
          conn = None;
          ever_connected = false;
          closed = false }
      in
      t.slots <- (peer, slot) :: t.slots;
      (slot, true)
  in
  (* Same dial direction rule as the initial mesh: we dial lower ids,
     higher ids dial us. *)
  if need_dialer && peer < t.me then
    t.threads <-
      Thread.create (fun () -> dialer_loop t slot addr) () :: t.threads;
  Mutex.unlock t.slots_mu;
  facade t slot

let remove_peer t ~peer =
  Mutex.lock t.slots_mu;
  (match List.assoc_opt peer t.slots with
   | Some slot ->
     Mutex.lock slot.mu;
     slot.closed <- true;
     let c = slot.conn in
     slot.conn <- None;
     Condition.broadcast slot.cv;
     Mutex.unlock slot.mu;
     (match c with Some c -> c.Transport.close () | None -> ())
   | None -> ());
  Mutex.unlock t.slots_mu

let close t =
  if not (Atomic.exchange t.closing true) then begin
    (* Shutdown wakes a thread parked in [accept] (Linux); close alone
       may not. *)
    (try Unix.shutdown t.listener Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ -> ());
    (try Unix.close t.listener with Unix.Unix_error _ -> ());
    List.iter
      (fun (_, slot) ->
         Mutex.lock slot.mu;
         slot.closed <- true;
         let c = slot.conn in
         slot.conn <- None;
         Condition.broadcast slot.cv;
         Mutex.unlock slot.mu;
         match c with Some c -> c.Transport.close () | None -> ())
      t.slots;
    List.iter Thread.join t.threads
  end

let establish ?connect_timeout_s ?gid ~me ~addrs () =
  links (create ?connect_timeout_s ?gid ~me ~addrs ())
