(** Request router for multi-group Paxos.

    With [Config.groups > 1] the ordering path is sharded: each group
    runs its own Paxos instance and orders a disjoint partition of the
    key space. The router is the pure partition function sitting between
    client ingress (ClientIO / {!Client_server}) and the per-group
    pipelines: it classifies a request through the service's
    {!Service.t.conflict_keys} and names the group whose log must order
    it — or [Global] for a request that must be serialised against every
    group (executed under the cross-group quiescence barrier, see
    {!Replica_group}).

    {b Consistency invariant:} routing must agree with conflict
    classification. Two requests whose key sets intersect hash to the
    same group (same keys → same {!group_of_key} result), so the
    single-group ordering guarantee is preserved within each partition;
    requests with intersecting key sets can only end up in different
    groups if the service classified them inconsistently. A request
    whose keys span several groups cannot be ordered by any single log
    and is promoted to [Global]. *)

type target =
  | Group of int  (** order through this group's log *)
  | Global
      (** serialise against every group: cross-group quiescence barrier,
          then execution through group 0's log *)

val group_of_key : groups:int -> string -> int
(** Stable hash partition of one conflict key, in [[0, groups)]. Every
    layer that partitions by key (router, executors, benchmarks) must
    use this one function. @raise Invalid_argument if [groups < 1]. *)

val group_of_client : groups:int -> int -> int
(** Partition by client id ([cid mod groups]) — the stand-in used when
    no key is available (and by the simulator's workload, where one
    client drives one key). *)

val target_of_conflict : groups:int -> fallback:int -> Service.conflict -> target
(** Map a conflict classification to a routing target:

    - [Keys [k]] (and [Keys ks] when all of [ks] hash to one group) →
      [Group (group_of_key k)];
    - [Keys []] (conflicts with nothing) → [Group (fallback mod groups)]
      — any group may order it; [fallback] (typically the client id)
      spreads the load deterministically;
    - [Keys ks] spanning several groups, and [Global] → [Global]. *)

val target_of_request :
  groups:int -> Service.t -> Msmr_wire.Client_msg.request -> target
(** [target_of_conflict] over [service.conflict_keys req], with the
    request's client id as the fallback. *)
