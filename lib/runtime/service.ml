type conflict =
  | Keys of string list
  | Global

type t = {
  execute : Msmr_wire.Client_msg.request -> bytes;
  snapshot : unit -> bytes;
  restore : bytes -> unit;
  conflict_keys : Msmr_wire.Client_msg.request -> conflict;
  execute_undo :
    (Msmr_wire.Client_msg.request -> bytes * (unit -> unit)) option;
}

let global_conflicts _req = Global

let make ?(conflict_keys = global_conflicts) ?execute_undo ~execute ~snapshot
    ~restore () =
  { execute; snapshot; restore; conflict_keys; execute_undo }

let null ?(reply_size = 8) () =
  let reply = Bytes.make reply_size '\x00' in
  { execute = (fun _req -> reply);
    snapshot = (fun () -> Bytes.empty);
    restore = (fun _ -> ());
    conflict_keys = global_conflicts;
    (* Stateless, so undoing is trivial — but the null service classifies
       Global and never reaches the speculative path anyway. *)
    execute_undo = None }

let accumulator () =
  let sum = ref 0 in
  { execute =
      (fun req ->
         let d =
           match int_of_string_opt (Bytes.to_string req.payload) with
           | Some d -> d
           | None -> 0
         in
         sum := !sum + d;
         Bytes.of_string (string_of_int !sum));
    snapshot = (fun () -> Bytes.of_string (string_of_int !sum));
    restore =
      (fun b ->
         sum := match int_of_string_opt (Bytes.to_string b) with
           | Some v -> v
           | None -> 0);
    conflict_keys = global_conflicts;
    execute_undo = None }
