(** Replicated service interface.

    The state machine being replicated. [execute] must be deterministic:
    given the same state and the same request sequence, every replica must
    produce the same results. [snapshot]/[restore] support log truncation
    and state transfer to lagging replicas.

    {2 Conflict classes and parallel execution}

    The parallel ServiceManager (CBASE / early-scheduling style, after
    Marandi et al. and Alchieri et al.) executes {e non-conflicting}
    decided commands concurrently on an executor pool. [conflict_keys]
    classifies a command:

    - [Keys ks] — the command only touches the conflict classes named by
      [ks] (typically the keys it reads or writes). Two commands conflict
      iff their key sets intersect; conflicting commands are executed in
      decide order, non-conflicting commands may run concurrently on
      different executor threads.
    - [Global] — the command may touch arbitrary state: it is serialised
      against {e everything} (the executors are quiesced first). This is
      always a safe answer, and the default.

    Contract when a service returns [Keys _] for some commands: [execute]
    may then be called concurrently from several executor threads for
    commands with disjoint key sets, so shared state must tolerate that
    (e.g. a sharded map); commands whose key sets intersect are still
    serialised by the runtime, and [snapshot]/[restore] are only invoked
    with all executors quiescent. Services that always answer [Global]
    keep the original single-threaded contract unchanged.

    {2 Optimistic speculative execution}

    [execute_undo] is the opt-in hook for the speculative path
    (DESIGN.md section 16, after Marandi & Pedone's optimistic PSMR):
    [execute_undo req] applies [req] like [execute] would and returns
    the reply {e plus a rollback closure} that restores the state the
    command observed — byte-for-byte, so that undoing a suffix of
    speculatively executed commands in reverse order leaves the state as
    if none of them ran. The runtime only calls it for single-key
    [Keys [k]] commands, serialises all calls (and their undos) touching
    the same key, and guarantees every speculative execution is either
    confirmed or undone before a snapshot, restore, [Global] command or
    fast-path read observes the state. [None] (the default) disables
    speculation for the service — the runtime falls back to the ordered
    execute-after-commit path. *)

type conflict =
  | Keys of string list
      (** touches only these conflict classes (reads count as writes:
          classification is conservative) *)
  | Global  (** may touch anything — serialise against all commands *)

type t = {
  execute : Msmr_wire.Client_msg.request -> bytes;
  snapshot : unit -> bytes;
  restore : bytes -> unit;
  conflict_keys : Msmr_wire.Client_msg.request -> conflict;
  execute_undo :
    (Msmr_wire.Client_msg.request -> bytes * (unit -> unit)) option;
      (** speculative execute: apply the request and return
          [(reply, undo)]; [None] = service does not support rollback *)
}

val global_conflicts : Msmr_wire.Client_msg.request -> conflict
(** [fun _ -> Global]: the safe default classifier (fully serial). *)

val make :
  ?conflict_keys:(Msmr_wire.Client_msg.request -> conflict) ->
  ?execute_undo:(Msmr_wire.Client_msg.request -> bytes * (unit -> unit)) ->
  execute:(Msmr_wire.Client_msg.request -> bytes) ->
  snapshot:(unit -> bytes) ->
  restore:(bytes -> unit) ->
  unit ->
  t
(** Assemble a service; [conflict_keys] defaults to {!global_conflicts},
    [execute_undo] to [None] (no speculation). *)

val null : ?reply_size:int -> unit -> t
(** The paper's benchmark service (Section VI): discards the request
    payload and answers with [reply_size] bytes (default 8). Snapshot is
    empty. Classifies everything [Global]. *)

val accumulator : unit -> t
(** A tiny deterministic service used by tests: interprets the payload as
    a decimal integer, adds it to a running sum and replies with the new
    sum (as a decimal string). Snapshots carry the sum. Every command
    touches the sum, so everything is [Global] (serial). *)
