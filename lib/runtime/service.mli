(** Replicated service interface.

    The state machine being replicated. [execute] must be deterministic:
    given the same state and the same request sequence, every replica must
    produce the same results. [snapshot]/[restore] support log truncation
    and state transfer to lagging replicas.

    {2 Conflict classes and parallel execution}

    The parallel ServiceManager (CBASE / early-scheduling style, after
    Marandi et al. and Alchieri et al.) executes {e non-conflicting}
    decided commands concurrently on an executor pool. [conflict_keys]
    classifies a command:

    - [Keys ks] — the command only touches the conflict classes named by
      [ks] (typically the keys it reads or writes). Two commands conflict
      iff their key sets intersect; conflicting commands are executed in
      decide order, non-conflicting commands may run concurrently on
      different executor threads.
    - [Global] — the command may touch arbitrary state: it is serialised
      against {e everything} (the executors are quiesced first). This is
      always a safe answer, and the default.

    Contract when a service returns [Keys _] for some commands: [execute]
    may then be called concurrently from several executor threads for
    commands with disjoint key sets, so shared state must tolerate that
    (e.g. a sharded map); commands whose key sets intersect are still
    serialised by the runtime, and [snapshot]/[restore] are only invoked
    with all executors quiescent. Services that always answer [Global]
    keep the original single-threaded contract unchanged. *)

type conflict =
  | Keys of string list
      (** touches only these conflict classes (reads count as writes:
          classification is conservative) *)
  | Global  (** may touch anything — serialise against all commands *)

type t = {
  execute : Msmr_wire.Client_msg.request -> bytes;
  snapshot : unit -> bytes;
  restore : bytes -> unit;
  conflict_keys : Msmr_wire.Client_msg.request -> conflict;
}

val global_conflicts : Msmr_wire.Client_msg.request -> conflict
(** [fun _ -> Global]: the safe default classifier (fully serial). *)

val make :
  ?conflict_keys:(Msmr_wire.Client_msg.request -> conflict) ->
  execute:(Msmr_wire.Client_msg.request -> bytes) ->
  snapshot:(unit -> bytes) ->
  restore:(bytes -> unit) ->
  unit ->
  t
(** Assemble a service; [conflict_keys] defaults to {!global_conflicts}. *)

val null : ?reply_size:int -> unit -> t
(** The paper's benchmark service (Section VI): discards the request
    payload and answers with [reply_size] bytes (default 8). Snapshot is
    empty. Classifies everything [Global]. *)

val accumulator : unit -> t
(** A tiny deterministic service used by tests: interprets the payload as
    a decimal integer, adds it to a running sum and replies with the new
    sum (as a decimal string). Snapshots carry the sum. Every command
    touches the sum, so everything is [Global] (serial). *)
