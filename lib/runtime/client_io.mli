(** ClientIO module: pool of client-facing I/O threads.

    Section V-A: a static pool of threads, each owning a subset of client
    connections. A ClientIO thread deserialises incoming requests, checks
    the reply cache (answering duplicates immediately), and feeds fresh
    requests to the RequestQueue; replies produced by the ServiceManager
    are handed back to the owning thread, which serialises them and
    invokes the connection's send function.

    Two details keep the pipeline deadlock-free, mirroring the paper's
    design: the ServiceManager never blocks handing a reply over (each
    worker has an unbounded lock-free MPSC reply queue), and a worker
    whose [try_put] into the bounded RequestQueue fails stops accepting
    new requests while still draining replies — this is the back-pressure
    that ultimately pushes back on clients (Section V-E). *)

type t

type sink = bytes -> unit
(** Where a serialised reply is delivered (in-process callback or socket
    write). *)

type batch_sink = bytes list -> unit
(** Optional coalesced variant of {!sink}: delivers a whole run of replies
    for one connection in a single call, letting socket-backed connections
    flush them with one buffered write ({!Msmr_wire.Frame.write_many}).
    Payloads are in delivery order. *)

val create :
  ?name_prefix:string ->
  ?lockfree:bool ->
  ?on_fresh:
    (Msmr_wire.Client_msg.request -> Service.conflict option -> unit) ->
  pool_size:int ->
  request_queue:Msmr_wire.Client_msg.request Msmr_platform.Channel.t ->
  reply_cache:Reply_cache.t ->
  unit ->
  t
(** Starts [pool_size] threads named [<prefix>ClientIO-<i>]. [lockfree]
    (default true) picks the engine for the per-worker ingress channels;
    the RequestQueue's engine is the caller's choice at its creation.

    [on_fresh] (default none) is the speculative pre-dispatch hook: it
    runs on the worker thread for every fresh request — after the reply
    cache said [Fresh], before the request is handed toward the Batcher —
    with the conflict class the submitter threaded through {!submit}, if
    any. The replica uses it to pre-dispatch the request to its executor
    lane ahead of commit (DESIGN.md section 16). *)

val submit :
  ?reply_many:batch_sink ->
  ?conflict:Service.conflict ->
  t ->
  raw:bytes ->
  reply_to:sink ->
  unit
(** Hand one serialised request to the pool (round-robin per client id,
    so one client always lands on the same thread, like a persistent
    connection). Blocks when that thread's ingress queue is full —
    equivalent to TCP back-pressure on a real connection. When
    [reply_many] is given, runs of replies destined for this connection
    that are drained in the same pass are delivered through it instead of
    one [reply_to] call each. [conflict] carries the router's conflict
    classification of this request, so the spine classifies once at
    ingress instead of re-deriving it at every stage (it reaches the
    [on_fresh] hook and, through it, the executor scheduler). *)

val deliver_reply : t -> Msmr_wire.Client_msg.reply -> unit
(** Called by the ServiceManager: route the reply to the thread owning
    the client and return immediately. Replies for unknown clients are
    dropped (the client reconnected elsewhere). *)

val ingress_length : t -> int
(** Total queued ingress frames across workers (for statistics). *)

val stop : t -> unit
(** Close ingress queues and join the worker threads. *)
