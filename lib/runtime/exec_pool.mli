(** Parallel ServiceManager executor pool.

    The scheduler thread (the replica's DecisionQueue consumer) routes
    each decided request to a *lane* — [Hashtbl.hash key mod lanes] —
    and the pool runs the lanes on [n_exec] executor threads. Two
    variants behind one interface:

    - hash-shard ([steal = false], or whenever [lockfree = false] /
      [n_exec = 1]): lane = executor, one queue each — PR 6's pool,
      pinned by the goldens on the mutex path.
    - work-stealing ([steal = true] on the lock-free path): many more
      lanes than executors, each lane an SPSC ring owned by whichever
      executor holds its unique *token*; idle executors steal half of a
      random victim's tokens. A zipfian-hot shard therefore spreads over
      idle siblings — the convoy the paper's single-queue profile shows
      — while same-key requests still execute one at a time, in decide
      order, because only the token holder drains a lane.

    Invariants relied on by the replica:
    - per-lane execution order = dispatch order (so per-key decide
      order), in both variants;
    - {!quiesce} returns only when every {!send}-dispatched request has
      finished executing (snapshots, state install, multi-key/global
      commands);
    - {!send} and {!quiesce} are scheduler-only; {!executor_loop} is the
      whole executor thread body. *)

type 'a t

val create : lockfree:bool -> steal:bool -> n_exec:int -> unit -> 'a t
(** @raise Invalid_argument if [n_exec < 1]. *)

val n_exec : 'a t -> int

val lanes : 'a t -> int
(** Route keys with [Hashtbl.hash key mod lanes t]. *)

val stealing : 'a t -> bool
(** Whether the work-stealing variant is active (it requires
    [lockfree && steal && n_exec > 1]). *)

val send : ?st:Msmr_platform.Thread_state.t -> 'a t -> lane:int -> 'a -> unit
(** Dispatch to a lane (blocking under back-pressure). During shutdown
    the request may be dropped; counters never leak. *)

val send_rr : ?st:Msmr_platform.Thread_state.t -> 'a t -> 'a -> unit
(** Dispatch a conflict-free request to the next lane round-robin. *)

val quiesce : 'a t -> Msmr_platform.Thread_state.t -> unit
(** Block (accounted [Waiting]) until the pool is idle. *)

val executor_loop :
  'a t ->
  idx:int ->
  exec:('a -> unit) ->
  st:Msmr_platform.Thread_state.t ->
  unit
(** Body of executor thread [idx]: runs until {!close} and the backlog
    is drained. [exec] exceptions propagate after the pool's counters
    are unwedged. *)

val close : 'a t -> unit
(** Idempotent; wakes every executor so it can drain and exit. *)

val depth : 'a t -> int
(** Queued-but-undispatched requests across all lanes (racy snapshot). *)

val dispatched : 'a t -> int
val barriers : 'a t -> int

val steals : 'a t -> int
(** Token-steal operations that obtained at least one token. *)

val steal_fails : 'a t -> int
(** Full victim scans that found nothing to steal. *)
