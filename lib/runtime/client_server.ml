module Worker = Msmr_platform.Worker

let log_src = Logs.Src.create "msmr.client_server" ~doc:"Client TCP front-end"

module Log = (val Logs.src_log log_src : Logs.LOG)

type conn = {
  fd : Unix.file_descr;
  write_lock : Mutex.t;
  mutable alive : bool;
}

type t = {
  submit :
    raw:bytes -> reply_to:(bytes -> unit) -> reply_many:(bytes list -> unit)
    -> unit;
      (* where accepted requests go: one replica's ClientIO pool
         ([start]) or the multi-group router ([start_group]) *)
  listener : Unix.file_descr;
  bound_port : int;
  conns : (int, conn) Hashtbl.t;     (* keyed by a connection counter *)
  conns_lock : Mutex.t;
  mutable next_conn : int;
  running : bool Atomic.t;
  mutable acceptor : Worker.t option;
  m_labels : Msmr_obs.Metrics.labels;
  m_accepted : Msmr_obs.Metrics.counter;
}

let sink_of conn raw =
  Mutex.lock conn.write_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock conn.write_lock) @@ fun () ->
  if conn.alive then
    try Msmr_wire.Frame.write conn.fd raw
    with Unix.Unix_error _ | Sys_error _ -> conn.alive <- false

(* Coalesced variant: a whole run of replies leaves in one write(2). *)
let batch_sink_of conn raws =
  Mutex.lock conn.write_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock conn.write_lock) @@ fun () ->
  if conn.alive then
    try Msmr_wire.Frame.write_many conn.fd raws
    with Unix.Unix_error _ | Sys_error _ -> conn.alive <- false

let conn_reader t conn =
  (* One closure pair per connection: the ClientIO drain groups replies by
     the sink's physical identity, so the identity must be stable across
     this connection's requests for coalescing to engage. *)
  let reply_to = sink_of conn in
  let reply_many = batch_sink_of conn in
  let continue = ref true in
  while !continue && conn.alive do
    match Msmr_wire.Frame.read conn.fd with
    | Some raw -> t.submit ~raw ~reply_to ~reply_many
    | None -> continue := false
    | exception (End_of_file | Unix.Unix_error _ | Msmr_wire.Frame.Oversized _)
      ->
      continue := false
  done;
  conn.alive <- false;
  try Unix.close conn.fd with Unix.Unix_error _ -> ()

let accept_loop t _st =
  while Atomic.get t.running do
    match Unix.accept t.listener with
    | fd, _ ->
      Unix.setsockopt fd Unix.TCP_NODELAY true;
      Msmr_obs.Metrics.incr t.m_accepted;
      let conn = { fd; write_lock = Mutex.create (); alive = true } in
      Mutex.lock t.conns_lock;
      let id = t.next_conn in
      t.next_conn <- id + 1;
      Hashtbl.replace t.conns id conn;
      Mutex.unlock t.conns_lock;
      ignore
        (Worker.spawn ~name:(Printf.sprintf "conn-%d" id) (fun _ ->
             conn_reader t conn;
             Mutex.lock t.conns_lock;
             Hashtbl.remove t.conns id;
             Mutex.unlock t.conns_lock))
    | exception Unix.Unix_error _ -> ()  (* listener closed: loop exits *)
  done

let start_with ~label ~submit ~port =
  let listener = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listener Unix.SO_REUSEADDR true;
  Unix.bind listener (Unix.ADDR_INET (Unix.inet_addr_any, port));
  Unix.listen listener 128;
  let bound_port =
    match Unix.getsockname listener with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> port
  in
  let m_labels = [ ("mode", "live"); ("replica", label) ] in
  let t =
    { submit; listener; bound_port; conns = Hashtbl.create 64;
      conns_lock = Mutex.create (); next_conn = 0;
      running = Atomic.make true; acceptor = None;
      m_labels;
      m_accepted =
        Msmr_obs.Metrics.counter ~labels:m_labels
          "msmr_client_server_accepted_total" }
  in
  Msmr_obs.Metrics.gauge ~labels:m_labels "msmr_client_server_connections"
    (fun () ->
       Mutex.lock t.conns_lock;
       let n = Hashtbl.length t.conns in
       Mutex.unlock t.conns_lock;
       float_of_int n);
  t.acceptor <- Some (Worker.spawn ~name:"ClientAcceptor" (accept_loop t));
  Log.info (fun m -> m "client server listening on port %d" bound_port);
  t

let start replica ~port =
  start_with
    ~label:(string_of_int (Replica.me replica))
    ~submit:(fun ~raw ~reply_to ~reply_many ->
        Replica.submit replica ~raw ~reply_to ~reply_many)
    ~port

let start_group rg ~port =
  (* The multi-group front-end: the acceptor feeds frames to the router
     stage instead of one replica's ClientIO pool. Reply coalescing is
     per-submit there (the router wraps each sink to track in-flight
     requests), so [reply_many] is not plumbed through. *)
  start_with ~label:"router"
    ~submit:(fun ~raw ~reply_to ~reply_many:_ ->
        Replica_group.submit rg ~raw ~reply_to)
    ~port

let port t = t.bound_port

let connections t =
  Mutex.lock t.conns_lock;
  let n = Hashtbl.length t.conns in
  Mutex.unlock t.conns_lock;
  n

let stop t =
  if Atomic.exchange t.running false then begin
    List.iter
      (fun name -> Msmr_obs.Metrics.remove ~labels:t.m_labels name)
      [ "msmr_client_server_accepted_total"; "msmr_client_server_connections" ];
    (* A thread blocked in [Unix.accept] is not reliably woken by closing
       the listener; poke it with a throw-away connection first. *)
    (try
       let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
       (try
          Unix.connect fd
            (Unix.ADDR_INET (Unix.inet_addr_loopback, t.bound_port))
        with Unix.Unix_error _ -> ());
       Unix.close fd
     with Unix.Unix_error _ -> ());
    (try Unix.close t.listener with Unix.Unix_error _ -> ());
    Mutex.lock t.conns_lock;
    let conns = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [] in
    Mutex.unlock t.conns_lock;
    List.iter
      (fun c ->
         c.alive <- false;
         try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      conns;
    match t.acceptor with Some w -> Worker.join w | None -> ()
  end
