(** A full replica: the paper's threading architecture, assembled.

    Threads and queues (Figure 3):

    {v
      clients -> [ClientIO-0..k]  --RequestQueue-->  [Batcher]
                    ^                                   |
                    | replies                     ProposalQueue
                    |                                   v
      [Replica] <--DecisionQueue-- [Protocol] <--DispatcherQueue-- [ReplicaIORcv-p]
                                      |  \--SendQueue-p--> [ReplicaIOSnd-p] --> peer p
                                      |
                     [FailureDetector]  [Retransmitter]
                                      |
                            LogQueue  v  (Durable mode)
                             [StableStorage] --(released sends)--> SendQueues
    v}

    The Protocol thread owns the {!Msmr_consensus.Paxos} engine
    exclusively; every other thread communicates with it through queues
    (or, for the failure-detector timestamps, through single-word shared
    state), enforcing the paper's no-lock rule inside the
    ReplicationCore.

    In [Durable] mode the Protocol thread never touches the disk: WAL
    events ride a bounded LogQueue to a dedicated StableStorage thread,
    which appends them in bursts — one fsync per burst under
    [Sync_every_write] (group commit) — and durability-dependent
    messages ([Prepare_ok], [Accepted], the leader's own [Accept]) are
    held back until the LSN they depend on is durable (see DESIGN.md
    §10). *)

type t

type durability =
  | Ephemeral
      (** no stable storage — the paper's evaluation configuration *)
  | Durable of { dir : string; sync : Msmr_storage.Wal.sync_policy }
      (** WAL + snapshot checkpoints in [dir]; on [create] the replica
          recovers its view, accepted entries and executed prefix from
          there *)

val create :
  ?client_io_threads:int ->
  ?batcher_threads:int ->
  ?executor_threads:int ->
  ?proxy_leaders:int ->
  ?gid:int ->
  ?request_queue_capacity:int ->
  ?proposal_queue_capacity:int ->
  ?durability:durability ->
  ?reconnects:(unit -> int) ->
  cfg:Msmr_consensus.Config.t ->
  me:Msmr_consensus.Types.node_id ->
  links:(Msmr_consensus.Types.node_id * Transport.link) list ->
  service:Service.t ->
  unit ->
  t
(** Build and start a replica. [links] must contain one link per peer
    (every node in [0, cfg.n) except [me]). Defaults: 3 ClientIO threads,
    1 Batcher thread (more is the paper's Section VI-B extension),
    RequestQueue capacity 1000 (the paper's setting), ProposalQueue
    capacity 20.

    [executor_threads] sizes the ServiceManager. The default [1] is the
    paper's single Replica thread executing decisions inline. With [k > 1]
    the Replica thread becomes a scheduler over [k] Executor threads:
    decided requests are routed by hashing the conflict keys reported by
    {!Service.t.conflict_keys}, so commands with intersecting key sets
    (and all [Global] ones) keep their decide order while disjoint
    commands execute concurrently. At-most-once is decided by the
    scheduler in decide order (a per-client dispatch frontier), so
    duplicate suppression is exact even though a client's non-conflicting
    commands may execute out of order on different executors. Snapshots
    and state installs always run with the pool quiescent. Parallel
    execution only helps services
    that classify commands with [Keys]; a service using the default
    [Global] classifier degenerates to serial execution plus barrier
    overhead.

    [proxy_leaders] compartmentalizes the Protocol thread's fan-out
    (Whittaker-style proxy leaders): with [k > 0], a multi-destination
    send (the leader's [Accept]/[Decide] broadcasts) costs the Protocol
    thread one enqueue onto a ProxyLeader queue, and [k] ProxyLeader
    threads expand it into the per-peer send queues. The default [0]
    keeps the original direct path byte-for-byte (no queue, no threads).

    [gid] is this replica's consensus group in a multi-group deployment
    (see {!Replica_group} and [Config.groups]): the engine bootstraps at
    view [gid] — so node [gid mod cfg.n] leads the group — and metrics
    carry a [group="<gid>"] label. Omitted (the default), the replica is
    the classic single-group deployment, unchanged.

    [reconnects] supplies the transport's reconnection counter (see
    {!Tcp_mesh}); it backs [msmr_replica_reconnect_total] and
    {!reconnects_count}. Default: a constant [0] (the in-process
    {!Transport.Hub} never reconnects). *)

val me : t -> Msmr_consensus.Types.node_id

val submit :
  ?reply_many:Client_io.batch_sink ->
  ?conflict:Service.conflict ->
  t ->
  raw:bytes ->
  reply_to:Client_io.sink ->
  unit
(** Inject one serialised client request ({!Msmr_wire.Client_msg}); the
    reply is delivered, serialised, to [reply_to]. Blocks under overload
    (back-pressure). [reply_many], when given, receives coalesced runs of
    replies instead (see {!Client_io.submit}). [conflict] carries an
    upstream conflict classification of the request (the multi-group
    {!Router} computes one to pick the group), so the spine classifies
    each request once (see {!Client_io.submit}).

    Read frames ({!Msmr_wire.Client_msg.is_read_raw}) take the lease fast
    path instead: they bypass ClientIO/Batcher/Paxos and ride the
    DecisionQueue straight to the state machine, which answers through
    [reply_to] with a serialised {!Msmr_wire.Client_msg.read_reply}
    ([Read_unsupported] when the replica runs with
    [lease_enabled = false]). The read's payload must be a non-mutating
    command of the service — executing it locally must not change state. *)

val is_leader : t -> bool
val current_view : t -> Msmr_consensus.Types.view

val tuned_now : t -> int * int
(** [(bsz, wnd)] currently in force. With [cfg.auto_tune] these are the
    autotune controller's latest published values (the Batcher threads
    read the same atomics); without it they stay at the static config. *)

val executed_count : t -> int
(** Client requests executed so far (excludes duplicates and noops). *)

val decided_count : t -> int

val view_changes_count : t -> int
(** Views this replica has installed beyond its starting one (the value
    behind [msmr_replica_view_changes_total]). *)

val suspects_count : t -> int
(** Leader suspicions raised by this replica's failure detector (plus
    any {!inject_suspect} calls). *)

val reconnects_count : t -> int
(** Peer-link reconnections reported by the transport's [reconnects]
    callback; always [0] over a {!Transport.Hub}. *)

val proxy_fanout_count : t -> int
(** Per-destination message expansions performed by this replica's
    ProxyLeader threads (the value behind
    [msmr_replica_proxy_fanout_total]); always [0] when the replica was
    created with [proxy_leaders = 0]. *)

val lease_held : t -> bool
(** Does this replica hold a currently valid leader lease (own clock)?
    Always [false] with [lease_enabled = false]. *)

val lease_renewals_count : t -> int
(** Lease rounds that reached quorum (acquisitions + renewals); the value
    behind [msmr_lease_renewals_total]. *)

val reads_served_count : t -> int
(** Linearizable reads answered from the local state machine under a
    valid lease ([msmr_read_served_total]). *)

val reads_rejected_count : t -> int
(** Linearizable reads refused with [Not_leaseholder]
    ([msmr_read_rejected_total]). *)

val stale_reads_served_count : t -> int
(** Bounded-staleness reads served ([msmr_read_stale_served_total]). *)

val stale_reads_rejected_count : t -> int
(** Bounded-staleness reads refused with [Too_stale]
    ([msmr_read_stale_rejected_total]). *)

(** {2 Speculative execution accounting (Config.speculate)}

    All four are [0] unless the replica runs with [cfg.speculate = true],
    [executor_threads > 1] and a service implementing
    {!Service.t.execute_undo}. *)

val spec_dispatched_count : t -> int
(** Speculation frames admitted and pre-dispatched to the executor lanes
    ahead of commit ([msmr_executor_spec_dispatch_total]). *)

val spec_confirmed_count : t -> int
(** Frames whose predicted order matched the decide stream — their staged
    reply was promoted and delivered without re-execution
    ([msmr_executor_spec_confirm_total]). *)

val spec_aborted_count : t -> int
(** Frames rolled back (mispredict, view change, Global command,
    snapshot or linearizable read) ([msmr_executor_spec_abort_total]). *)

val spec_requeued_count : t -> int
(** Decided requests re-executed on the ordered path after a mispredict
    on their key ([msmr_executor_spec_requeue_total]). *)

(** {2 Online membership change (DESIGN.md §17)} *)

val membership : t -> Msmr_consensus.Membership.t
(** The newest membership epoch this replica has adopted (at execute
    time of the ordering [Reconfig] instance). *)

val is_member : t -> bool
(** Is this replica in its own adopted membership? A removed replica is
    fenced: it never votes, grants a lease, heartbeats or serves a
    read. *)

val request_reconfig : t -> Msmr_consensus.Membership.t -> unit
(** Hand a target membership (epoch = current + 1, built with
    {!Msmr_consensus.Membership.add_learner} / [promote] / [remove]) to
    the Protocol thread, which orders it through the log. Best-effort:
    rejected proposals (not leader, reconfig already in flight, stale
    epoch) are dropped — poll {!membership} and retry. *)

val reconfigs_applied_count : t -> int
(** Membership epochs adopted ([msmr_replica_reconfig_applied_total]). *)

val snapshot_installs_count : t -> int
(** Snapshots installed through catch-up state transfer
    ([msmr_replica_snapshot_install_total]). *)

val first_undecided : t -> int
(** The engine's decided frontier as last published by the Protocol
    thread — the catch-up lag measure the join driver uses. *)

type queue_stats = {
  request_queue : int;
  proposal_queue : int;
  dispatcher_queue : int;
  decision_queue : int;
  window_in_use : int;
}

val queue_stats : t -> queue_stats
(** Instantaneous sizes of the internal queues (Table I's quantities). *)

val inject_suspect : t -> unit
(** Test hook: make this replica suspect the current leader now, as if
    its failure detector had timed out. *)

val stall_stable_storage : t -> bool -> unit
(** Test hook: [stall_stable_storage t true] parks the StableStorage
    thread — no WAL append, no fsync, and no durability-gated message
    ([Prepare_ok]/[Accepted]/[Accept]) is released to the send queues —
    until [stall_stable_storage t false]. No-op on an [Ephemeral]
    replica. *)

val stop : t -> unit
(** Stop all threads and close the peer links. Idempotent. *)

module Cluster : sig
  (** Convenience: an n-replica in-process cluster over a {!Transport.Hub}. *)

  type replica := t

  type t

  val create :
    ?client_io_threads:int ->
    ?executor_threads:int ->
    ?proxy_leaders:int ->
    ?gid:int ->
    ?durability:(int -> durability) ->
    cfg:Msmr_consensus.Config.t ->
    service:(unit -> Service.t) ->
    unit ->
    t
  (** Fresh service instance per replica; [durability] maps a node id to
      its storage mode (default: all ephemeral); [executor_threads],
      [proxy_leaders] and [gid] are passed to every replica's {!create}
      (a cluster with [gid = g] is one group of a multi-group deployment;
      see {!Replica_group} for the assembled sharded cluster). *)

  val replicas : t -> replica array
  val hub : t -> Transport.Hub.t

  val leader : t -> replica
  (** The replica currently believing it leads (falls back to replica 0
      if none does). *)

  val await_leader : ?timeout_s:float -> t -> replica
  (** Wait until some replica reports leadership. @raise Failure on
      timeout. *)

  val kill : t -> int -> unit
  (** Crash replica [i] in place: stop all its threads and close its
      links. Peers see dead connections; their sends drop silently until
      {!restart}. *)

  val restart : t -> int -> replica
  (** Rebuild replica [i] (idempotently stopping the old incarnation)
      with fresh hub queues and the same construction parameters. Under
      [Durable] durability the new incarnation recovers from the WAL in
      the same directory — the live crash-recovery path. Returns the new
      replica, which also replaces slot [i] of {!replicas}. *)

  val join : ?timeout_s:float -> ?promote:bool -> t -> int -> unit
  (** Bring node [i] (a running spare from the capacity universe, e.g.
      outside [Config.members0]) into the membership: order an
      add-learner epoch through the log, wait until state transfer has
      caught the joiner up to within one window of the leader, then
      (unless [promote = false]) order its promotion into the voting
      set. Blocks; @raise Failure on [timeout_s] (default 10 s per
      phase). *)

  val decommission : ?timeout_s:float -> t -> int -> unit
  (** Order node [i]'s removal from the membership and wait for
      adoption. The removed node keeps running but is fenced by the
      epoch change. @raise Failure on timeout. *)

  val stop : t -> unit
end
