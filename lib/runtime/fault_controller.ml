type t = {
  cluster : Replica.Cluster.t;
  kills : int Atomic.t;
  restarts : int Atomic.t;
  severs : int Atomic.t;
  joins : int Atomic.t;
  decommissions : int Atomic.t;
}

let create ~cluster () =
  { cluster;
    kills = Atomic.make 0;
    restarts = Atomic.make 0;
    severs = Atomic.make 0;
    joins = Atomic.make 0;
    decommissions = Atomic.make 0 }

let kill t i =
  Atomic.incr t.kills;
  Replica.Cluster.kill t.cluster i

let restart t i =
  Atomic.incr t.restarts;
  Replica.Cluster.restart t.cluster i

let kill_leader t =
  (* [leader] falls back to replica 0 when nobody claims leadership;
     killing it anyway is fine — it is as good a victim as any. *)
  let i = Replica.me (Replica.Cluster.leader t.cluster) in
  kill t i;
  i

let sever_link t ~a ~b =
  Atomic.incr t.severs;
  let hub = Replica.Cluster.hub t.cluster in
  (* Both directions: a real broken cable loses traffic both ways. *)
  Transport.Hub.sever hub ~src:a ~dst:b;
  Transport.Hub.sever hub ~src:b ~dst:a

let heal_link t ~a ~b =
  let hub = Replica.Cluster.hub t.cluster in
  Transport.Hub.heal_link hub ~src:a ~dst:b;
  Transport.Hub.heal_link hub ~src:b ~dst:a

let isolate t i = Transport.Hub.cut (Replica.Cluster.hub t.cluster) i
let rejoin t i = Transport.Hub.heal (Replica.Cluster.hub t.cluster) i

(* Online membership change (DESIGN.md §17): grow / shrink the voting
   set through the consensus-ordered reconfiguration path, driven like
   any other fault-schedule step. *)
let join ?timeout_s ?promote t i =
  Atomic.incr t.joins;
  Replica.Cluster.join ?timeout_s ?promote t.cluster i

let decommission ?timeout_s t i =
  Atomic.incr t.decommissions;
  Replica.Cluster.decommission ?timeout_s t.cluster i

let kills t = Atomic.get t.kills
let restarts t = Atomic.get t.restarts
let severs t = Atomic.get t.severs
let joins t = Atomic.get t.joins
let decommissions t = Atomic.get t.decommissions
