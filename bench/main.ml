(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section VI). Run all experiments with

     dune exec bench/main.exe

   or a subset:

     dune exec bench/main.exe -- fig4 tab1 micro

   The multi-core scalability experiments run on the deterministic
   discrete-event simulator (see DESIGN.md for the substitution argument
   and calibration); `live` exercises the real threading architecture on
   this machine; `micro` runs bechamel micro-benchmarks of the
   substrate. *)

module Params = Msmr_sim.Params
module Jp = Msmr_sim.Jpaxos_model
module Zk = Msmr_baseline.Zk_model
module Sstats = Msmr_sim.Sstats

let core_points profile =
  if profile.Params.max_cores <= 8 then [ 1; 2; 3; 4; 5; 6; 7; 8 ]
  else [ 1; 2; 4; 6; 8; 12; 16; 20; 24 ]

(* ------------------------------------------------------------------ *)
(* Cached model runs (several figures share the same sweeps). *)

let jp_cache : (string, Jp.result) Hashtbl.t = Hashtbl.create 64
let zk_cache : (int, Zk.result) Hashtbl.t = Hashtbl.create 16

let jp ?(profile = Params.parapluie) ?(n = 3) ~cores ?wnd ?bsz ?cio () =
  let p = Params.default ~profile ~n ~cores () in
  let p = { p with warmup = 0.3; duration = 1.0 } in
  let p = match wnd with Some w -> { p with wnd = w } | None -> p in
  let p = match bsz with Some b -> { p with bsz = b } | None -> p in
  let p =
    match cio with Some c -> { p with client_io_threads = c } | None -> p
  in
  let key =
    Printf.sprintf "%s/n%d/c%d/w%d/b%d/io%d" profile.profile_name n cores
      p.wnd p.bsz p.client_io_threads
  in
  match Hashtbl.find_opt jp_cache key with
  | Some r -> r
  | None ->
    let r = Jp.run p in
    Hashtbl.replace jp_cache key r;
    r

let zk ~cores =
  match Hashtbl.find_opt zk_cache cores with
  | Some r -> r
  | None ->
    let p = Params.default ~n:3 ~cores () in
    let p = { p with warmup = 0.3; duration = 1.0 } in
    let r = Zk.run p in
    Hashtbl.replace zk_cache cores r;
    r

(* ------------------------------------------------------------------ *)
(* Rendering helpers. *)

let heading id title =
  Printf.printf "\n==== %s: %s ====\n%!" id title

let profile_table rows =
  Format.printf "%a%!" Sstats.pp_profile rows

let k x = x /. 1e3

(* ------------------------------------------------------------------ *)
(* Experiments. *)

let fig1 () =
  heading "fig1" "ZooKeeper throughput vs cores; leader thread profile";
  Printf.printf "(paper: peak ~50K req/s at 4 cores, <30K at 24; heavy blocked time)\n";
  Printf.printf "%6s %14s %10s %12s\n" "cores" "req/s (x1000)" "cpu%" "blocked%";
  List.iter
    (fun cores ->
       let r = zk ~cores in
       Printf.printf "%6d %14.1f %10.0f %12.1f\n%!" cores (k r.throughput)
         r.replicas.(0).cpu_util_pct r.replicas.(0).blocked_pct)
    (core_points Params.parapluie);
  Printf.printf "\nFig 1b - per-thread profile of the ZooKeeper leader, 24 cores:\n";
  profile_table (zk ~cores:24).replicas.(0).threads

let fig4 () =
  heading "fig4" "JPaxos throughput and speedup vs cores (parapluie)";
  Printf.printf "(paper: n=3 linear to ~6 cores, ~100K req/s and speedup ~6.5 at 12+;\n";
  Printf.printf " n=5 lower, speedup ~5.5)\n";
  Printf.printf "%6s | %13s %8s | %13s %8s\n" "cores" "n=3 (x1000)" "speedup"
    "n=5 (x1000)" "speedup";
  let base3 = (jp ~n:3 ~cores:1 ()).throughput in
  let base5 = (jp ~n:5 ~cores:1 ()).throughput in
  List.iter
    (fun cores ->
       let r3 = jp ~n:3 ~cores () and r5 = jp ~n:5 ~cores () in
       Printf.printf "%6d | %13.1f %8.2f | %13.1f %8.2f\n%!" cores
         (k r3.throughput) (r3.throughput /. base3)
         (k r5.throughput) (r5.throughput /. base5))
    (core_points Params.parapluie);
  let curve n =
    List.map
      (fun cores -> (float_of_int cores, k (jp ~n ~cores ()).throughput))
      (core_points Params.parapluie)
  in
  Format.printf "@.%a"
    (fun ppf () ->
       Msmr_platform.Ascii_plot.render ppf ~y_label:"req/s (x1000)"
         ~x_label:"cores"
         [ { Msmr_platform.Ascii_plot.label = "n=3"; points = curve 3 };
           { label = "n=5"; points = curve 5 } ])
    ()

let fig5 () =
  heading "fig5" "JPaxos CPU utilization and total blocked time (parapluie)";
  Printf.printf "(paper: leader highest; blocked stays under ~20%% of the run)\n";
  List.iter
    (fun n ->
       Printf.printf "n=%d:\n%6s" n "cores";
       for i = 0 to n - 1 do
         Printf.printf "  cpu%%[r%d] blk%%[r%d]" i i
       done;
       print_newline ();
       List.iter
         (fun cores ->
            let r = jp ~n ~cores () in
            Printf.printf "%6d" cores;
            Array.iter
              (fun (rep : Jp.replica_report) ->
                 Printf.printf "  %8.0f %8.1f" rep.cpu_util_pct rep.blocked_pct)
              r.replicas;
            print_newline ())
         (core_points Params.parapluie))
    [ 3; 5 ]

let fig6 () =
  heading "fig6" "JPaxos throughput and speedup vs cores (edel, 8 cores)";
  Printf.printf "(paper: near-linear to speedup ~7 at 8 cores, ~80K req/s, network not saturated)\n";
  Printf.printf "%6s | %13s %8s | %13s %8s\n" "cores" "n=3 (x1000)" "speedup"
    "n=5 (x1000)" "speedup";
  let profile = Params.edel in
  let base3 = (jp ~profile ~n:3 ~cores:1 ()).throughput in
  let base5 = (jp ~profile ~n:5 ~cores:1 ()).throughput in
  List.iter
    (fun cores ->
       let r3 = jp ~profile ~n:3 ~cores () and r5 = jp ~profile ~n:5 ~cores () in
       Printf.printf "%6d | %13.1f %8.2f | %13.1f %8.2f\n%!" cores
         (k r3.throughput) (r3.throughput /. base3)
         (k r5.throughput) (r5.throughput /. base5))
    (core_points profile)

let fig7 () =
  heading "fig7" "JPaxos CPU utilization and blocked time (edel)";
  List.iter
    (fun n ->
       Printf.printf "n=%d:\n%6s" n "cores";
       for i = 0 to n - 1 do
         Printf.printf "  cpu%%[r%d] blk%%[r%d]" i i
       done;
       print_newline ();
       List.iter
         (fun cores ->
            let r = jp ~profile:Params.edel ~n ~cores () in
            Printf.printf "%6d" cores;
            Array.iter
              (fun (rep : Jp.replica_report) ->
                 Printf.printf "  %8.0f %8.1f" rep.cpu_util_pct rep.blocked_pct)
              r.replicas;
            print_newline ())
         (core_points Params.edel))
    [ 3; 5 ]

let fig8 () =
  heading "fig8" "JPaxos per-thread profile of the leader (n=3)";
  Printf.printf "(paper: at 1 core ClientIO+Batcher dominate; at full cores all\n";
  Printf.printf " threads 30-60%% busy with minimal blocked time)\n";
  let show label (r : Jp.result) =
    Printf.printf "\n%s:\n" label;
    profile_table r.replicas.(0).threads
  in
  show "parapluie, 1 core" (jp ~n:3 ~cores:1 ());
  show "parapluie, 24 cores" (jp ~n:3 ~cores:24 ());
  show "edel, 1 core" (jp ~profile:Params.edel ~n:3 ~cores:1 ());
  show "edel, 8 cores" (jp ~profile:Params.edel ~n:3 ~cores:8 ())

let fig9 () =
  heading "fig9" "Throughput and CPU vs number of ClientIO threads (24 cores)";
  Printf.printf "(paper: ~40K with 1 thread, >100K with 4, degrades beyond ~8)\n";
  Printf.printf "%12s %14s %10s\n" "IO threads" "req/s (x1000)" "cpu%";
  List.iter
    (fun cio ->
       let r = jp ~n:3 ~cores:24 ~cio () in
       Printf.printf "%12d %14.1f %10.0f\n%!" cio (k r.throughput)
         r.replicas.(0).cpu_util_pct)
    [ 1; 2; 3; 4; 6; 8; 12; 16; 20; 24 ]

let wnd_points = [ 1; 4; 6; 10; 15; 20; 35; 50 ]

let tab1 () =
  heading "tab1" "Average queue sizes and parallel ballots vs WND (Table I)";
  Printf.printf "(paper: RequestQueue >1/4 full, ProposalQueue >1/2 full,\n";
  Printf.printf " DispatcherQueue ~empty, window ~= WND)\n";
  Printf.printf "%5s %13s %14s %16s %15s\n" "WND" "RequestQueue"
    "ProposalQueue" "DispatcherQueue" "parallel ballots";
  List.iter
    (fun wnd ->
       let r = jp ~n:3 ~cores:24 ~wnd () in
       Printf.printf "%5d %13.1f %14.2f %16.2f %15.2f\n%!" wnd
         r.avg_request_queue r.avg_proposal_queue r.avg_dispatcher_queue
         r.avg_window)
    wnd_points

let fig10 () =
  heading "fig10" "Performance as a function of window size (24 cores, n=3)";
  Printf.printf "(paper: throughput rises until the NIC packet budget binds, then\n";
  Printf.printf " flattens while instance latency keeps growing with WND; our\n";
  Printf.printf " simulated kernel queues less than the real pre-2.6.35 stack, so\n";
  Printf.printf " the crossover lands at a smaller WND - see EXPERIMENTS.md)\n";
  Printf.printf "%5s %14s %13s %17s %12s\n" "WND" "req/s (x1000)"
    "latency (ms)" "batch (reqs)" "window";
  List.iter
    (fun wnd ->
       let r = jp ~n:3 ~cores:24 ~wnd () in
       Printf.printf "%5d %14.1f %13.2f %17.1f %12.1f\n%!" wnd (k r.throughput)
         (r.instance_latency *. 1e3) r.avg_batch_reqs r.avg_window)
    wnd_points

let tab2 () =
  heading "tab2" "Ping RTT between nodes, idle vs during a run (Table II)";
  Printf.printf "(paper: idle ~0.06ms everywhere; leader<->any ~2.5ms under load)\n";
  let r = jp ~n:3 ~cores:24 ~wnd:35 () in
  Printf.printf "%-28s %10.3f ms\n" "idle any <-> any" (r.rtt_idle *. 1e3);
  Printf.printf "%-28s %10.3f ms\n" "follower <-> follower"
    (r.rtt_followers *. 1e3);
  Printf.printf "%-28s %10.3f ms\n%!" "leader <-> any" (r.rtt_leader *. 1e3)

let bsz_points = [ 650; 1300; 2600; 5200; 10400 ]

let fig11 () =
  heading "fig11" "Performance as a function of batch size (24 cores, WND=35)";
  Printf.printf "(paper: 650B noticeably slower; >=1300B all roughly equal)\n";
  Printf.printf "%6s %14s %13s %13s %12s\n" "BSZ" "req/s (x1000)"
    "latency (ms)" "batch (B)" "window";
  List.iter
    (fun bsz ->
       let r = jp ~n:3 ~cores:24 ~wnd:35 ~bsz () in
       Printf.printf "%6d %14.1f %13.2f %13.0f %12.1f\n%!" bsz (k r.throughput)
         (r.instance_latency *. 1e3) r.avg_batch_bytes r.avg_window)
    bsz_points

let tab3 () =
  heading "tab3" "Throughput and network utilization vs BSZ (Table III)";
  Printf.printf "(paper: packets/s out pinned at ~150K for every BSZ)\n";
  Printf.printf "%6s %12s %10s %10s %9s %9s\n" "BSZ" "throughput"
    "pkts/s out" "pkts/s in" "MB/s out" "MB/s in";
  List.iter
    (fun bsz ->
       let r = jp ~n:3 ~cores:24 ~wnd:35 ~bsz () in
       Printf.printf "%6d %11.0fK %9.0fK %9.0fK %9.1f %9.1f\n%!" bsz
         (k r.throughput) (k r.leader_tx_pps) (k r.leader_rx_pps)
         r.leader_tx_mbps r.leader_rx_mbps)
    bsz_points

let fig12 () =
  heading "fig12" "JPaxos vs ZooKeeper throughput and speedup vs cores";
  Printf.printf "(paper: JPaxos scales to ~100K; ZooKeeper peaks at 4 cores then degrades)\n";
  Printf.printf "%6s | %15s %8s | %17s %8s\n" "cores" "JPaxos (x1000)"
    "speedup" "ZooKeeper (x1000)" "speedup";
  let jbase = (jp ~n:3 ~cores:1 ()).throughput in
  let zbase = (zk ~cores:1).throughput in
  List.iter
    (fun cores ->
       let j = jp ~n:3 ~cores () and z = zk ~cores in
       Printf.printf "%6d | %15.1f %8.2f | %17.1f %8.2f\n%!" cores
         (k j.throughput) (j.throughput /. jbase)
         (k z.throughput) (z.throughput /. zbase))
    (core_points Params.parapluie);
  let points f =
    List.map
      (fun cores -> (float_of_int cores, k (f cores)))
      (core_points Params.parapluie)
  in
  Format.printf "@.%a"
    (fun ppf () ->
       Msmr_platform.Ascii_plot.render ppf ~y_label:"req/s (x1000)"
         ~x_label:"cores"
         [ { Msmr_platform.Ascii_plot.label = "JPaxos (staged)";
             points = points (fun c -> (jp ~n:3 ~cores:c ()).throughput) };
           { label = "ZooKeeper-like";
             points = points (fun c -> (zk ~cores:c).throughput) } ])
    ()

let fig13 () =
  heading "fig13" "ZooKeeper CPU usage and contention vs cores";
  Printf.printf "(paper: leader blocked time exceeds 100%% of the run; CPU rises\n";
  Printf.printf " while throughput falls - cycles burned on contention)\n";
  Printf.printf "%6s" "cores";
  for i = 0 to 2 do
    Printf.printf "  cpu%%[r%d] blk%%[r%d]" i i
  done;
  print_newline ();
  List.iter
    (fun cores ->
       let r = zk ~cores in
       Printf.printf "%6d" cores;
       Array.iter
         (fun (rep : Zk.replica_report) ->
            Printf.printf "  %8.0f %8.1f" rep.cpu_util_pct rep.blocked_pct)
         r.replicas;
       print_newline ())
    (core_points Params.parapluie)

let fig14 () =
  heading "fig14" "ZooKeeper per-thread profile of the leader";
  Printf.printf "(paper: at 24 cores three threads are busy-or-blocked 100%% of the time)\n";
  Printf.printf "\n1 core:\n";
  profile_table (zk ~cores:1).replicas.(0).threads;
  Printf.printf "\n24 cores:\n";
  profile_table (zk ~cores:24).replicas.(0).threads

let ext () =
  heading "ext"
    "Extensions the paper proposes (Section VI-B and footnote 5)";
  Printf.printf
    "(RSS/RPS spreads NIC interrupts over cores - the paper reports the\n\
    \ throughput roughly doubled; multiple Batcher threads are the paper's\n\
    \ proposed parallelisation; it predicts the Replica thread becomes the\n\
    \ next, hard-to-parallelise bottleneck)\n";
  let run ~label ?(rss = false) ?(batchers = 1) ?cio ?(exec_speedup = 1.0) () =
    let p = Params.default ~n:3 ~cores:24 () in
    let p =
      { p with warmup = 0.3; duration = 1.0; rss; n_batchers = batchers;
        costs =
          { p.costs with
            exec_per_req = p.costs.exec_per_req /. exec_speedup };
        client_io_threads =
          (match cio with Some c -> c | None -> p.client_io_threads) }
    in
    let r = Jp.run p in
    let busy name =
      match List.assoc_opt name r.replicas.(0).threads with
      | Some (t : Sstats.totals) -> 100. *. t.busy
      | None -> nan
    in
    let batcher_busy =
      if batchers = 1 then busy "Batcher" else busy "Batcher-0"
    in
    Printf.printf "%-30s %10.1fK %12.0f%% %11.0f%% %11.0f%%\n%!" label
      (k r.throughput)
      (r.replicas.(0).cpu_util_pct)
      batcher_busy (busy "Replica")
  in
  Printf.printf "%-30s %11s %13s %12s %12s\n" "configuration" "req/s"
    "leader cpu" "Batcher busy" "Replica busy";
  run ~label:"paper setup (WND=10)" ();
  run ~label:"+ RSS" ~rss:true ();
  run ~label:"+ RSS, 2 Batchers" ~rss:true ~batchers:2 ();
  run ~label:"+ RSS, 4 Batchers, 8 IO" ~rss:true ~batchers:4 ~cio:8 ();
  (* The paper's last lever: "the only obvious way to improve this stage
     [the Replica thread] is by optimizing its single-thread
     performance". *)
  run ~label:"+ RSS, 2 Batchers, 2x Replica" ~rss:true ~batchers:2
    ~exec_speedup:2.0 ();
  Printf.printf
    "-> with the kernel limit lifted, the single-threaded Replica stage\n\
    \   saturates (~100%% busy); extra Batcher/ClientIO threads no longer\n\
    \   help, and only making the Replica stage itself faster does - the\n\
    \   scalability limit and the remedy the paper names in Section VI-B.\n"

(* ------------------------------------------------------------------ *)
(* Live experiments: the real runtime on this machine. *)

(* Run [n_clients] closed-loop clients against a live cluster for
   [duration_s]; returns (throughput, latency histogram). *)
let live_load ?(payload_size = 112) ~first_id cluster ~n_clients ~duration_s () =
  let module R = Msmr_runtime in
  let stop_at =
    Int64.add (Msmr_platform.Mclock.now_ns ())
      (Msmr_platform.Mclock.ns_of_s duration_s)
  in
  let completed = Atomic.make 0 in
  let hist = Msmr_platform.Histogram.create () in
  let workers =
    List.init n_clients (fun i ->
        Thread.create
          (fun () ->
             let client =
               R.Client.create ~cluster ~client_id:(first_id + i) ()
             in
             let payload = Bytes.make payload_size 'x' in
             while Int64.compare (Msmr_platform.Mclock.now_ns ()) stop_at < 0 do
               let t0 = Msmr_platform.Mclock.now_ns () in
               ignore (R.Client.call client payload);
               Msmr_platform.Histogram.record hist
                 (Msmr_platform.Mclock.s_of_ns
                    (Int64.sub (Msmr_platform.Mclock.now_ns ()) t0));
               ignore (Atomic.fetch_and_add completed 1)
             done)
          ())
  in
  List.iter Thread.join workers;
  (float_of_int (Atomic.get completed) /. duration_s, hist)

let ablation () =
  heading "ablation"
    "Stable storage ablation (live runtime, this host)";
  Printf.printf
    "(the paper disables stable storage because it \"would introduce an\n\
    \ additional bottleneck\"; this measures that cost on the real runtime:\n\
    \ WAL disabled / unsynced / fsync'd periodically / fsync per write)\n";
  let module R = Msmr_runtime in
  let cfg =
    { (Msmr_consensus.Config.default ~n:3) with
      max_batch_delay_s = 0.002;
      snapshot_every = 0 }
  in
  let tmp_root =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "msmr-ablation-%d" (Unix.getpid ()))
  in
  let rec rm_rf path =
    match Unix.lstat path with
    | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
    | _ -> Sys.remove path
    | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  in
  Printf.printf "%-24s %12s %12s %12s\n" "durability" "req/s" "p50 (ms)"
    "p99 (ms)";
  List.iter
    (fun (label, durability) ->
       rm_rf tmp_root;
       Unix.mkdir tmp_root 0o755;
       let cluster =
         R.Replica.Cluster.create ~durability ~cfg
           ~service:(fun () -> R.Service.null ())
           ()
       in
       Fun.protect ~finally:(fun () -> R.Replica.Cluster.stop cluster)
       @@ fun () ->
       ignore (R.Replica.Cluster.await_leader cluster);
       let tput, hist =
         live_load ~first_id:1 cluster ~n_clients:8 ~duration_s:2.0 ()
       in
       Printf.printf "%-24s %12.0f %12.2f %12.2f\n%!" label tput
         (1e3 *. Msmr_platform.Histogram.percentile hist 0.5)
         (1e3 *. Msmr_platform.Histogram.percentile hist 0.99))
    [ ("ephemeral (paper setup)", fun _ -> R.Replica.Ephemeral);
      ( "wal, no sync",
        fun me ->
          R.Replica.Durable
            { dir = Filename.concat tmp_root (Printf.sprintf "ns%d" me);
              sync = Msmr_storage.Wal.No_sync } );
      ( "wal, periodic sync",
        fun me ->
          R.Replica.Durable
            { dir = Filename.concat tmp_root (Printf.sprintf "ps%d" me);
              sync = Msmr_storage.Wal.Sync_periodic } );
      ( "wal, fsync every write",
        fun me ->
          R.Replica.Durable
            { dir = Filename.concat tmp_root (Printf.sprintf "es%d" me);
              sync = Msmr_storage.Wal.Sync_every_write } ) ];
  rm_rf tmp_root

let live () =
  heading "live" "Live threading architecture on this host (sanity check)";
  let module R = Msmr_runtime in
  let cfg =
    { (Msmr_consensus.Config.default ~n:3) with
      max_batch_delay_s = 0.002;
      fd_interval_s = 0.05;
      fd_timeout_s = 0.3 }
  in
  let cluster =
    R.Replica.Cluster.create ~cfg ~service:(fun () -> R.Service.null ()) ()
  in
  Fun.protect ~finally:(fun () -> R.Replica.Cluster.stop cluster)
  @@ fun () ->
  let leader = R.Replica.Cluster.await_leader cluster in
  let n_clients = 16 and duration_s = 3.0 in
  let tput, hist = live_load ~first_id:1 cluster ~n_clients ~duration_s () in
  let stats = R.Replica.queue_stats leader in
  Printf.printf
    "3 replicas in-process, %d closed-loop clients, %.0fs: %.0f req/s\n"
    n_clients duration_s tput;
  Format.printf "latency: %a@." Msmr_platform.Histogram.pp_summary hist;
  Printf.printf
    "leader queues at end: request=%d proposal=%d dispatcher=%d window=%d\n"
    stats.request_queue stats.proposal_queue stats.dispatcher_queue
    stats.window_in_use;
  Printf.printf "decided instances: %d, executed requests: %d\n%!"
    (R.Replica.decided_count leader)
    (R.Replica.executed_count leader);
  Printf.printf "\nper-thread states (Thread_state accounting):\n";
  Format.printf "%a%!" Msmr_platform.Thread_state.pp_report
    (Msmr_platform.Thread_state.snapshot_all ())

let live_mono () =
  heading "live-mono"
    "Staged architecture vs traditional monolithic event loop (live, this host)";
  Printf.printf
    "(the paper's premise: the traditional single-event-loop design is\n\
    \ fine on few cores and caps at one thread. This host has %d core(s),\n\
    \ so expect parity here; the multi-core separation is what fig4/fig12\n\
    \ show on the simulator.)\n"
    (try
       let ic = Unix.open_process_in "nproc" in
       let n = int_of_string (String.trim (input_line ic)) in
       ignore (Unix.close_process_in ic);
       n
     with _ -> 1);
  let module R = Msmr_runtime in
  let cfg =
    { (Msmr_consensus.Config.default ~n:3) with max_batch_delay_s = 0.002 }
  in
  let n_clients = 8 and duration_s = 2.0 in
  (* Staged. *)
  let staged_tput, staged_hist =
    let cluster =
      R.Replica.Cluster.create ~cfg ~service:(fun () -> R.Service.null ()) ()
    in
    Fun.protect ~finally:(fun () -> R.Replica.Cluster.stop cluster)
    @@ fun () ->
    ignore (R.Replica.Cluster.await_leader cluster);
    live_load ~first_id:1 cluster ~n_clients ~duration_s ()
  in
  (* Monolithic: closed-loop clients via submit + reply box. *)
  let mono_tput, mono_hist =
    let module Mono = Msmr_baseline.Mono_replica in
    let cluster =
      Mono.Cluster.create ~cfg ~service:(fun () -> R.Service.null ()) ()
    in
    Fun.protect ~finally:(fun () -> Mono.Cluster.stop cluster) @@ fun () ->
    let leader = Mono.Cluster.await_leader cluster in
    let stop_at = Unix.gettimeofday () +. duration_s in
    let completed = Atomic.make 0 in
    let hist = Msmr_platform.Histogram.create () in
    let workers =
      List.init n_clients (fun i ->
          Thread.create
            (fun () ->
               let payload = Bytes.make 112 'x' in
               let reply_box = Msmr_platform.Bounded_queue.create ~capacity:1 in
               let seq = ref 0 in
               while Unix.gettimeofday () < stop_at do
                 incr seq;
                 let raw =
                   Msmr_wire.Client_msg.request_to_bytes
                     { id = { client_id = i + 1; seq = !seq }; payload }
                 in
                 let t0 = Unix.gettimeofday () in
                 Mono.submit leader ~raw ~reply_to:(fun b ->
                     ignore (Msmr_platform.Bounded_queue.try_put reply_box b));
                 match
                   Msmr_platform.Bounded_queue.take_timeout reply_box
                     ~timeout_s:2.0
                 with
                 | Some _ ->
                   Msmr_platform.Histogram.record hist
                     (Unix.gettimeofday () -. t0);
                   ignore (Atomic.fetch_and_add completed 1)
                 | None -> ()
               done)
            ())
    in
    List.iter Thread.join workers;
    (float_of_int (Atomic.get completed) /. duration_s, hist)
  in
  Printf.printf "%-28s %10s %10s %10s\n" "architecture" "req/s" "p50 (ms)"
    "p99 (ms)";
  let row label tput hist =
    Printf.printf "%-28s %10.0f %10.2f %10.2f\n%!" label tput
      (1e3 *. Msmr_platform.Histogram.percentile hist 0.5)
      (1e3 *. Msmr_platform.Histogram.percentile hist 0.99)
  in
  row "staged (paper)" staged_tput staged_hist;
  row "monolithic event loop" mono_tput mono_hist

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the substrate. *)

let micro () =
  heading "micro" "Substrate micro-benchmarks (bechamel)";
  let open Bechamel in
  let open Toolkit in
  let bq = Msmr_platform.Bounded_queue.create ~capacity:1024 in
  let bench_bq =
    Test.make ~name:"bounded_queue put+take"
      (Staged.stage (fun () ->
           Msmr_platform.Bounded_queue.put bq 42;
           ignore (Msmr_platform.Bounded_queue.take bq)))
  in
  let mpsc = Msmr_platform.Mpsc_queue.create () in
  let bench_mpsc =
    Test.make ~name:"mpsc push+pop"
      (Staged.stage (fun () ->
           Msmr_platform.Mpsc_queue.push mpsc 42;
           ignore (Msmr_platform.Mpsc_queue.pop mpsc)))
  in
  let cmap = Msmr_platform.Concurrent_map.create () in
  let key = ref 0 in
  let bench_cmap =
    Test.make ~name:"concurrent_map set+find"
      (Staged.stage (fun () ->
           incr key;
           let kk = !key land 1023 in
           Msmr_platform.Concurrent_map.set cmap kk kk;
           ignore (Msmr_platform.Concurrent_map.find_opt cmap kk)))
  in
  let rc = Msmr_runtime.Reply_cache.create () in
  let seq = ref 0 in
  let bench_cache =
    Test.make ~name:"reply_cache store+lookup"
      (Staged.stage (fun () ->
           incr seq;
           let id =
             { Msmr_wire.Client_msg.client_id = !seq land 255; seq = !seq }
           in
           Msmr_runtime.Reply_cache.store rc id Bytes.empty;
           ignore (Msmr_runtime.Reply_cache.lookup rc id)))
  in
  let req =
    { Msmr_wire.Client_msg.id = { client_id = 7; seq = 1234 };
      payload = Bytes.make 112 'x' }
  in
  let bench_req_codec =
    Test.make ~name:"request encode+decode"
      (Staged.stage (fun () ->
           ignore
             (Msmr_wire.Client_msg.request_of_bytes
                (Msmr_wire.Client_msg.request_to_bytes req))))
  in
  let accept =
    Msmr_consensus.Msg.Accept
      { view = 3; iid = 42;
        value =
          Msmr_consensus.Value.Batch
            { bid = { src = 0; num = 7 };
              requests = List.init 9 (fun _ -> req) } }
  in
  let bench_msg_codec =
    Test.make ~name:"accept(9 reqs) encode+decode"
      (Staged.stage (fun () ->
           ignore (Msmr_consensus.Msg.decode (Msmr_consensus.Msg.encode accept))))
  in
  let cfg_b = Msmr_consensus.Config.default ~n:3 in
  let bench_batcher =
    let b = Msmr_consensus.Batcher.create cfg_b ~src:0 in
    Test.make ~name:"batcher add (128B reqs)"
      (Staged.stage (fun () ->
           ignore (Msmr_consensus.Batcher.add b req ~now_ns:0L)))
  in
  let dq = Msmr_platform.Delay_queue.create () in
  let bench_delayq =
    Test.make ~name:"delay_queue schedule+cancel"
      (Staged.stage (fun () ->
           let h =
             Msmr_platform.Delay_queue.schedule dq ~at_ns:Int64.max_int 0
           in
           Msmr_platform.Delay_queue.cancel h))
  in
  let test =
    Test.make_grouped ~name:"substrate"
      [ bench_bq; bench_mpsc; bench_cmap; bench_cache; bench_req_codec;
        bench_msg_codec; bench_batcher; bench_delayq ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances test in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
       match Analyze.OLS.estimates ols with
       | Some [ est ] -> Printf.printf "%-40s %10.0f ns/op\n" name est
       | Some _ | None -> Printf.printf "%-40s (no estimate)\n" name)
    (List.sort compare rows);
  print_newline ()

(* ------------------------------------------------------------------ *)
(* bench002: machine-readable snapshot of the headline results, written
   as JSON so CI and the verify script can regression-check numbers
   instead of scraping tables. Two sweeps:
     - core scaling:     jp, n=3, cores in {1, 8, 24}  (fig4 anchor points)
     - executor scaling: exec_threads in {1, 2, 4, 8} on an
       execution-bound workload (the parallel-ServiceManager figure; the
       workload keeps the leader far below the NIC ceiling so executor
       scaling is visible rather than masked by the packet budget). *)

let bench_quick = ref false
let bench_out = ref "bench/BENCH_002.json"

let bench002 () =
  heading "bench002"
    (Printf.sprintf "Machine-readable snapshot -> %s%s" !bench_out
       (if !bench_quick then " (--quick)" else ""));
  let module J = Msmr_obs.Json in
  let warmup, duration = if !bench_quick then (0.05, 0.1) else (0.3, 1.0) in
  let core_row cores =
    let p = Params.default ~profile:Params.parapluie ~n:3 ~cores () in
    let r = Jp.run { p with warmup; duration } in
    (cores, r.Jp.throughput)
  in
  let exec_row exec_threads =
    (* Execution-bound: 50 us/request (vs the calibrated ~10 us), 16
       cores, 600 closed-loop clients. exec_threads=1 runs the exact
       serial ServiceManager path. *)
    let p = Params.default ~n:3 ~cores:16 () in
    let p =
      { p with
        n_clients = 600;
        warmup = (if !bench_quick then 0.05 else 0.2);
        duration = (if !bench_quick then 0.1 else 0.5);
        costs = { p.costs with exec_per_req = 50e-6 };
        exec_threads }
    in
    let r = Jp.run p in
    (exec_threads, r.Jp.throughput)
  in
  let cores_rows = List.map core_row [ 1; 8; 24 ] in
  let exec_rows = List.map exec_row [ 1; 2; 4; 8 ] in
  let base_cores = List.assoc 1 cores_rows in
  let base_exec = List.assoc 1 exec_rows in
  Printf.printf "core scaling (n=3, parapluie):\n";
  Printf.printf "%6s %14s %8s\n" "cores" "req/s (x1000)" "speedup";
  List.iter
    (fun (c, t) ->
       Printf.printf "%6d %14.1f %8.2f\n%!" c (k t) (t /. base_cores))
    cores_rows;
  Printf.printf "executor scaling (n=3, 16 cores, exec-bound workload):\n";
  Printf.printf "%6s %14s %8s\n" "execs" "req/s (x1000)" "speedup";
  List.iter
    (fun (e, t) ->
       Printf.printf "%6d %14.1f %8.2f\n%!" e (k t) (t /. base_exec))
    exec_rows;
  let row_obj key (x, tput) base =
    J.Obj
      [ (key, J.Int x);
        ("throughput_rps", J.Float tput);
        ("speedup", J.Float (tput /. base)) ]
  in
  let json =
    J.Obj
      [ ("bench", J.String "BENCH_002");
        ("source", J.String "bench/main.exe bench002");
        ("quick", J.Bool !bench_quick);
        ( "core_scaling",
          J.Obj
            [ ("n", J.Int 3);
              ("profile", J.String "parapluie");
              ( "points",
                J.List
                  (List.map (fun r -> row_obj "cores" r base_cores) cores_rows)
              ) ] );
        ( "executor_scaling",
          J.Obj
            [ ("n", J.Int 3);
              ("cores", J.Int 16);
              ("exec_per_req_us", J.Float 50.0);
              ( "points",
                J.List
                  (List.map
                     (fun r -> row_obj "exec_threads" r base_exec)
                     exec_rows) ) ] ) ]
  in
  let oc = open_out !bench_out in
  output_string oc (J.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n%!" !bench_out

(* ------------------------------------------------------------------ *)
(* bench003: durable-mode sweep. The paper disables stable storage
   because a synchronous log "would introduce an additional bottleneck";
   this experiment quantifies that bottleneck and the group-commit
   remedy on the simulator: Sync_serial makes the Protocol thread block
   on one device fsync (5 ms) per persisted event, Sync_group runs the
   StableStorage pipeline — the log queue absorbs bursts, one fsync
   covers the whole burst, and gated sends are released when their LSN
   is durable. *)

let bench003_out = ref "bench/BENCH_003.json"

let bench003 () =
  heading "bench003"
    (Printf.sprintf "Durable-mode sweep (serial fsync vs group commit) -> %s%s"
       !bench003_out
       (if !bench_quick then " (--quick)" else ""));
  let module J = Msmr_obs.Json in
  (* Both policies are device-bound (5 ms/fsync), so client RTTs run to
     hundreds of ms under Sync_serial; the population and windows are
     sized so even the serial sweep reaches closed-loop steady state
     well inside the warm-up. *)
  let n_clients, warmup, duration =
    if !bench_quick then (100, 0.4, 0.8) else (400, 1.0, 2.0)
  in
  let run_pol cores pol =
    let p = Params.default ~profile:Params.parapluie ~n:3 ~cores () in
    Jp.run { p with n_clients; warmup; duration; sync_policy = pol }
  in
  let points =
    List.map
      (fun cores ->
         (cores, run_pol cores Params.Sync_serial,
          run_pol cores Params.Sync_group))
      [ 1; 8; 24 ]
  in
  Printf.printf "(n=3, parapluie, fsync latency %.0f ms)\n"
    (1e3 *. (Params.default ~n:3 ~cores:1 ()).fsync_latency);
  Printf.printf "%6s %15s %15s %8s %12s %12s\n" "cores" "serial (req/s)"
    "group (req/s)" "speedup" "group syncs" "recs/sync";
  List.iter
    (fun (cores, (s : Jp.result), (g : Jp.result)) ->
       Printf.printf "%6d %15.0f %15.0f %8.1f %12d %12.1f\n%!" cores
         s.throughput g.throughput
         (g.throughput /. s.throughput)
         g.wal_syncs g.wal_group_avg)
    points;
  let json =
    J.Obj
      [ ("bench", J.String "BENCH_003");
        ("source", J.String "bench/main.exe bench003");
        ("quick", J.Bool !bench_quick);
        ("n", J.Int 3);
        ("profile", J.String "parapluie");
        ( "fsync_latency_s",
          J.Float (Params.default ~n:3 ~cores:1 ()).fsync_latency );
        ( "points",
          J.List
            (List.map
               (fun (cores, (s : Jp.result), (g : Jp.result)) ->
                  J.Obj
                    [ ("cores", J.Int cores);
                      ("serial_rps", J.Float s.throughput);
                      ("group_rps", J.Float g.throughput);
                      ("speedup", J.Float (g.throughput /. s.throughput));
                      ("group_wal_syncs", J.Int g.wal_syncs);
                      ("group_records_per_sync", J.Float g.wal_group_avg) ])
               points) ) ]
  in
  let oc = open_out !bench003_out in
  output_string oc (J.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n%!" !bench003_out

(* ------------------------------------------------------------------ *)
(* bench004: static vs adaptive BSZ/WND. The paper hand-picks its two
   headline knobs per deployment; the Autotune controller (DESIGN.md
   §11) tunes them online from queue/batch/latency signals. This sweep
   compares, for each (request size, cores) point:
     - static-default: the paper's WND=10 / BSZ=1300, untouched;
     - static-best:    the best point of a small static grid — the
                       hand-tuning the controller is meant to replace;
     - adaptive:       auto_tune from the default starting point.
   The gate (scripts/verify.sh) requires adaptive to beat the static
   default by >= 1.2x somewhere and to stay within 10% of static-best
   everywhere. *)

let bench004_out = ref "bench/BENCH_004.json"

let bench004 () =
  heading "bench004"
    (Printf.sprintf "Static vs adaptive BSZ/WND sweep -> %s%s" !bench004_out
       (if !bench_quick then " (--quick)" else ""));
  let module J = Msmr_obs.Json in
  (* The adaptive runs start from the static default and must converge
     inside the warm-up; a finer controller epoch compensates for the
     shorter quick windows. *)
  let warmup, duration, epoch =
    if !bench_quick then (0.4, 0.4, 0.004) else (0.8, 1.0, 0.01)
  in
  let static_grid = [ (10, 1300); (35, 1300); (10, 16384); (35, 16384) ] in
  let run ~cores ~size ?(auto = false) ~wnd ~bsz () =
    let p = Params.default ~profile:Params.parapluie ~n:3 ~cores () in
    Jp.run
      { p with
        request_size = size;
        wnd;
        bsz;
        warmup;
        duration;
        auto_tune = auto;
        tune_epoch = epoch }
  in
  Printf.printf "(n=3, parapluie; adaptive starts from WND=10, BSZ=1300)\n";
  Printf.printf "%6s %6s | %11s %11s %9s | %11s %7s %7s %6s %7s\n" "size"
    "cores" "default" "best" "best@" "adaptive" "vs_def" "vs_best" "wnd*"
    "bsz*";
  let point size cores =
    let statics =
      List.map
        (fun (w, b) -> ((w, b), (run ~cores ~size ~wnd:w ~bsz:b ()).Jp.throughput))
        static_grid
    in
    let default_rps = List.assoc (10, 1300) statics in
    let (best_wnd, best_bsz), best_rps =
      List.fold_left
        (fun (bk, bt) (key, t) -> if t > bt then (key, t) else (bk, bt))
        (List.hd statics) (List.tl statics)
    in
    let ad = run ~cores ~size ~auto:true ~wnd:10 ~bsz:1300 () in
    let vs_def = ad.Jp.throughput /. default_rps in
    let vs_best = ad.Jp.throughput /. best_rps in
    Printf.printf
      "%6d %6d | %10.1fK %10.1fK %4d/%-5d | %10.1fK %7.2f %7.2f %6d %7d\n%!"
      size cores (k default_rps) (k best_rps) best_wnd best_bsz
      (k ad.Jp.throughput) vs_def vs_best ad.Jp.tuned_wnd_final
      ad.Jp.tuned_bsz_final;
    J.Obj
      [ ("request_size", J.Int size);
        ("cores", J.Int cores);
        ("static_default_rps", J.Float default_rps);
        ("static_best_rps", J.Float best_rps);
        ("static_best_wnd", J.Int best_wnd);
        ("static_best_bsz", J.Int best_bsz);
        ("adaptive_rps", J.Float ad.Jp.throughput);
        ("adaptive_vs_default", J.Float vs_def);
        ("adaptive_vs_best", J.Float vs_best);
        ("tuned_wnd_final", J.Int ad.Jp.tuned_wnd_final);
        ("tuned_bsz_final", J.Int ad.Jp.tuned_bsz_final) ]
  in
  let points =
    List.concat_map
      (fun size -> List.map (point size) [ 1; 8; 24 ])
      [ 128; 1024; 8192 ]
  in
  let json =
    J.Obj
      [ ("bench", J.String "BENCH_004");
        ("source", J.String "bench/main.exe bench004");
        ("quick", J.Bool !bench_quick);
        ("n", J.Int 3);
        ("profile", J.String "parapluie");
        ("start_wnd", J.Int 10);
        ("start_bsz", J.Int 1300);
        ( "static_grid",
          J.List
            (List.map
               (fun (w, b) ->
                  J.Obj [ ("wnd", J.Int w); ("bsz", J.Int b) ])
               static_grid) );
        ("points", J.List points) ]
  in
  let oc = open_out !bench004_out in
  output_string oc (J.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n%!" !bench004_out

(* ------------------------------------------------------------------ *)
(* bench005: fault injection and recovery. Three sections:
     - crash: deterministic sim run with the leader crashed mid-
       measurement and restarted; reports the throughput trajectory
       through the fault, the recovery time, and the post-recovery /
       pre-crash throughput ratio (gated >= 0.9 in scripts/verify.sh);
     - soak: a seeded randomized fault schedule (crash + partition +
       lossy links) run twice, checking the linearizability verdict,
       replica convergence, and bit-identical reproducibility;
     - live: the real runtime — Fault_controller kills the leader of a
       Durable in-process cluster, restarts it through WAL recovery, and
       reports the replica fault counters and per-client retry/redirect
       counts (informational; the sim sections carry the gates). *)

let bench005_out = ref "bench/BENCH_005.json"

let bench005 () =
  heading "bench005"
    (Printf.sprintf "Fault injection: crash recovery + seeded chaos soak -> %s%s"
       !bench005_out
       (if !bench_quick then " (--quick)" else ""));
  let module J = Msmr_obs.Json in
  let module F = Msmr_sim.Sfault in
  let quick = !bench_quick in
  let base ~duration ~client_timeout faults =
    let p = Params.default ~profile:Params.parapluie ~n:3 ~cores:2 () in
    { p with
      n_clients = 60;
      warmup = 0.1;
      duration;
      faults;
      chaos_seed = 42;
      chaos_client_timeout = client_timeout }
  in
  (* --- leader crash at mid-run, restart, measure the trajectory --- *)
  let crash_at, restart_at, duration, client_timeout =
    if quick then (0.3, 0.45, 0.7, 0.1) else (0.4, 0.7, 1.0, 0.25)
  in
  let p =
    base ~duration ~client_timeout
      [ F.Crash { node = 0; at = crash_at; restart_at = Some restart_at } ]
  in
  let r = Jp.run p in
  let bucket = p.chaos_bucket in
  let t_end = p.warmup +. p.duration in
  (* Clients stuck on the dethroned leader only give up after their
     retransmit timeout, so steady post-recovery throughput starts at
     restart + client timeout; the final timeline bucket is partial and
     excluded from both windows. *)
  let post_start = restart_at +. client_timeout in
  let window lo hi =
    let total = ref 0 and buckets = ref 0 in
    Array.iter
      (fun (t, c) ->
         if t >= lo -. 1e-9 && t +. bucket <= hi +. 1e-9 then begin
           total := !total + c;
           incr buckets
         end)
      r.Jp.timeline;
    if !buckets = 0 then 0.
    else float_of_int !total /. (float_of_int !buckets *. bucket)
  in
  let pre_rps = window p.warmup crash_at in
  let post_rps = window post_start t_end in
  let post_over_pre = if pre_rps > 0. then post_rps /. pre_rps else 0. in
  Printf.printf
    "crash: pre %.0f req/s | post %.0f req/s (ratio %.3f) | recovery %.3fs | \
     unavailable %.3fs | views %d | safety %b | client retries %d\n"
    pre_rps post_rps post_over_pre r.Jp.recovery_s r.Jp.unavailable_s
    r.Jp.view_changes r.Jp.safety_ok r.Jp.client_retries;
  Printf.printf "trajectory (completions per %.0f ms bucket):\n"
    (1e3 *. bucket);
  Array.iter
    (fun (t, c) ->
       if t +. bucket <= t_end +. 1e-9 then
         Printf.printf "  %5.2fs %6d %s\n" t c
           (String.make (min 60 (c / 50)) '#'))
    r.Jp.timeline;
  (* --- seeded randomized soak, run twice for reproducibility --- *)
  let seed = 42 in
  let soak_t0, soak_t1, soak_duration =
    if quick then (0.15, 0.55, 0.6) else (0.2, 1.0, 1.0)
  in
  let sp =
    base ~duration:soak_duration ~client_timeout
      (F.random_schedule ~seed ~n:3 ~t0:soak_t0 ~t1:soak_t1)
  in
  let s1 = Jp.run sp in
  let s2 = Jp.run sp in
  let runs_identical =
    s1.Jp.completed = s2.Jp.completed
    && s1.Jp.view_changes = s2.Jp.view_changes
    && s1.Jp.recovery_s = s2.Jp.recovery_s
    && s1.Jp.unavailable_s = s2.Jp.unavailable_s
    && s1.Jp.events = s2.Jp.events
  in
  let converged =
    s1.Jp.safety_ok && s1.Jp.executed_max - s1.Jp.executed_min <= 2000
  in
  Printf.printf
    "soak (seed %d): completed %d | views %d | recovery %.3fs | safety %b | \
     executed [%d, %d] | converged %b | runs identical %b\n"
    seed s1.Jp.completed s1.Jp.view_changes s1.Jp.recovery_s s1.Jp.safety_ok
    s1.Jp.executed_min s1.Jp.executed_max converged runs_identical;
  (* --- live runtime: kill + WAL-recover the leader under load --- *)
  let module R = Msmr_runtime in
  let tmp_root =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "msmr-bench005-%d" (Unix.getpid ()))
  in
  let rec rm_rf path =
    match Unix.lstat path with
    | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
    | _ -> Sys.remove path
    | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  in
  rm_rf tmp_root;
  Unix.mkdir tmp_root 0o755;
  let cfg =
    { (Msmr_consensus.Config.default ~n:3) with
      max_batch_delay_s = 0.002;
      fd_interval_s = 0.05;
      fd_timeout_s = 0.25 }
  in
  let cluster =
    R.Replica.Cluster.create
      ~durability:(fun me ->
          R.Replica.Durable
            { dir = Filename.concat tmp_root (string_of_int me);
              sync = Msmr_storage.Wal.No_sync })
      ~cfg
      ~service:(fun () -> R.Service.null ())
      ()
  in
  let fc = R.Fault_controller.create ~cluster () in
  let live_json =
    Fun.protect
      ~finally:(fun () ->
          R.Replica.Cluster.stop cluster;
          rm_rf tmp_root)
    @@ fun () ->
    ignore (R.Replica.Cluster.await_leader cluster);
    let live_dur = if quick then 1.0 else 2.0 in
    let n_clients = 4 in
    let stop_at =
      Int64.add (Msmr_platform.Mclock.now_ns ())
        (Msmr_platform.Mclock.ns_of_s live_dur)
    in
    let completed = Atomic.make 0 in
    let per_client = Array.make n_clients (0, 0, 0) in
    let workers =
      List.init n_clients (fun i ->
          Thread.create
            (fun () ->
               let client =
                 R.Client.create ~timeout_s:0.3 ~cluster ~client_id:(i + 1) ()
               in
               let payload = Bytes.make 112 'x' in
               while
                 Int64.compare (Msmr_platform.Mclock.now_ns ()) stop_at < 0
               do
                 ignore (R.Client.call client payload);
                 ignore (Atomic.fetch_and_add completed 1)
               done;
               per_client.(i) <-
                 ( R.Client.calls_made client,
                   R.Client.retries client,
                   R.Client.redirects client ))
            ())
    in
    Msmr_platform.Mclock.sleep_s (0.3 *. live_dur);
    let victim = R.Fault_controller.kill_leader fc in
    Msmr_platform.Mclock.sleep_s (0.2 *. live_dur);
    ignore (R.Fault_controller.restart fc victim);
    List.iter Thread.join workers;
    let sum f =
      Array.fold_left
        (fun acc rep -> acc + f rep)
        0
        (R.Replica.Cluster.replicas cluster)
    in
    let view_changes = sum R.Replica.view_changes_count in
    let suspects = sum R.Replica.suspects_count in
    let retries =
      Array.fold_left (fun acc (_, r, _) -> acc + r) 0 per_client
    in
    let redirects =
      Array.fold_left (fun acc (_, _, r) -> acc + r) 0 per_client
    in
    Printf.printf
      "live: killed replica %d under load, WAL-recovered it | completed %d | \
       views %d | suspects %d | client retries %d redirects %d\n%!"
      victim (Atomic.get completed) view_changes suspects retries redirects;
    J.Obj
      [ ("kills", J.Int (R.Fault_controller.kills fc));
        ("restarts", J.Int (R.Fault_controller.restarts fc));
        ("killed_replica", J.Int victim);
        ("completed", J.Int (Atomic.get completed));
        ("view_changes", J.Int view_changes);
        ("suspects", J.Int suspects);
        ("client_retries", J.Int retries);
        ("client_redirects", J.Int redirects);
        ( "clients",
          J.List
            (Array.to_list
               (Array.mapi
                  (fun i (calls, rtr, rdr) ->
                     J.Obj
                       [ ("client_id", J.Int (i + 1));
                         ("calls", J.Int calls);
                         ("retries", J.Int rtr);
                         ("redirects", J.Int rdr) ])
                  per_client)) ) ]
  in
  let json =
    J.Obj
      [ ("bench", J.String "BENCH_005");
        ("source", J.String "bench/main.exe bench005");
        ("quick", J.Bool quick);
        ( "crash",
          J.Obj
            [ ("n", J.Int 3);
              ("cores", J.Int 2);
              ("n_clients", J.Int 60);
              ("crash_at_s", J.Float crash_at);
              ("restart_at_s", J.Float restart_at);
              ("pre_rps", J.Float pre_rps);
              ("post_rps", J.Float post_rps);
              ("post_over_pre", J.Float post_over_pre);
              ("recovery_s", J.Float r.Jp.recovery_s);
              ("unavailable_s", J.Float r.Jp.unavailable_s);
              ("view_changes", J.Int r.Jp.view_changes);
              ("safety_ok", J.Bool r.Jp.safety_ok);
              ("client_retries", J.Int r.Jp.client_retries);
              ( "timeline",
                J.List
                  (Array.to_list
                     (Array.map
                        (fun (t, c) ->
                           J.Obj [ ("t", J.Float t); ("completed", J.Int c) ])
                        r.Jp.timeline)) ) ] );
        ( "soak",
          J.Obj
            [ ("seed", J.Int seed);
              ("completed", J.Int s1.Jp.completed);
              ("view_changes", J.Int s1.Jp.view_changes);
              ("recovery_s", J.Float s1.Jp.recovery_s);
              ("unavailable_s", J.Float s1.Jp.unavailable_s);
              ("safety_ok", J.Bool s1.Jp.safety_ok);
              ("executed_min", J.Int s1.Jp.executed_min);
              ("executed_max", J.Int s1.Jp.executed_max);
              ("client_retries", J.Int s1.Jp.client_retries);
              ("converged", J.Bool converged);
              ("runs_identical", J.Bool runs_identical) ] );
        ("live", live_json) ]
  in
  let oc = open_out !bench005_out in
  output_string oc (J.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n%!" !bench005_out

(* ------------------------------------------------------------------ *)
(* bench006: compartmentalized multi-group Paxos. A single group is
   NIC-bound at its leader (~150K pps through one kernel stack), so the
   classic deployment flattens near ~115K req/s regardless of cores.
   Group g is led by node g mod n: every extra group adds another
   leader NIC to the aggregate budget. This sweep measures throughput
   for groups in {1, 2, 4} at 8 and 24 cores (n=3, parapluie), records
   the per-group split, and exercises the cross-group Global barrier on
   a mixed workload (conflict_ratio > 0 forces quiescence barriers
   through group 0). The committed run is gated in scripts/verify.sh:
   groups=4 at 24 cores must reach >= 2x the single-group throughput. *)

let bench006_out = ref "bench/BENCH_006.json"

let bench006 () =
  heading "bench006"
    (Printf.sprintf "Multi-group Paxos scaling -> %s%s" !bench006_out
       (if !bench_quick then " (--quick)" else ""));
  let module J = Msmr_obs.Json in
  let warmup, duration = if !bench_quick then (0.1, 0.3) else (0.3, 1.0) in
  let run ~groups ~cores ?(conflict_ratio = 0.0) () =
    let p = Params.default ~profile:Params.parapluie ~n:3 ~cores () in
    Jp.run { p with groups; warmup; duration; conflict_ratio }
  in
  let group_pts = [ 1; 2; 4 ] and core_pts = [ 8; 24 ] in
  let rows =
    List.concat_map
      (fun cores ->
         List.map (fun groups -> (groups, cores, run ~groups ~cores ()))
           group_pts)
      core_pts
  in
  let base cores =
    let _, _, r =
      List.find (fun (g, c, _) -> g = 1 && c = cores) rows
    in
    r.Jp.throughput
  in
  Printf.printf "(n=3, parapluie; group g led by node g mod 3)\n";
  Printf.printf "%7s %6s %14s %8s  %s\n" "groups" "cores" "req/s (x1000)"
    "vs g=1" "per-group (x1000)";
  List.iter
    (fun (groups, cores, (r : Jp.result)) ->
       Printf.printf "%7d %6d %14.1f %8.2f  [%s]\n%!" groups cores
         (k r.throughput)
         (r.throughput /. base cores)
         (String.concat "; "
            (List.map
               (fun t -> Printf.sprintf "%.1f" (k t))
               (Array.to_list r.group_throughputs))))
    rows;
  (* Cross-group barrier: a slice of requests classified Global must
     drain every group before executing serially through group 0. *)
  let cr = 0.05 in
  let b = run ~groups:4 ~cores:24 ~conflict_ratio:cr () in
  Printf.printf
    "barrier (groups=4, 24 cores, %.0f%% Global): %.1fK req/s, %d globals \
     executed\n%!"
    (100. *. cr) (k b.throughput) b.globals_executed;
  let point (groups, cores, (r : Jp.result)) =
    J.Obj
      [ ("groups", J.Int groups);
        ("cores", J.Int cores);
        ("throughput_rps", J.Float r.throughput);
        ("speedup_vs_g1", J.Float (r.throughput /. base cores));
        ( "group_throughputs_rps",
          J.List
            (List.map (fun t -> J.Float t) (Array.to_list r.group_throughputs))
        ) ]
  in
  let json =
    J.Obj
      [ ("bench", J.String "BENCH_006");
        ("source", J.String "bench/main.exe bench006");
        ("quick", J.Bool !bench_quick);
        ("n", J.Int 3);
        ("profile", J.String "parapluie");
        ("points", J.List (List.map point rows));
        ( "barrier",
          J.Obj
            [ ("groups", J.Int 4);
              ("cores", J.Int 24);
              ("conflict_ratio", J.Float cr);
              ("throughput_rps", J.Float b.throughput);
              ("globals_executed", J.Int b.globals_executed) ] ) ]
  in
  let oc = open_out !bench006_out in
  output_string oc (J.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n%!" !bench006_out

(* ------------------------------------------------------------------ *)
(* bench007: lock-free hot path + work-stealing executors. Two sections:

   - sim (deterministic): the execution-bound workload of bench002 at 4
     executors, swept over client skew (fraction of "hot" clients whose
     conflict keys all home on executor 0) with the work-stealing pool
     on and off. Fixed routing convoys the hot lanes on one executor;
     stealing spreads their tokens over the pool. Gate:
     steal_speedup_hot >= 1.5 at skew 0.9.

   - live: a 3-replica in-process cluster under closed-loop load, once
     with the mutex spine ([Config.lockfree = false]) and once with the
     lock-free rings. The four-state thread accounting (paper §VI-B) is
     reset after warm-up; the spine's summed Blocked time — lock
     acquisition — is the figure of merit. Gate: blocked_reduction >= 5.
     (Executor-count scaling itself is a simulator claim: this host
     serialises OCaml threads, so the live section measures lock
     behaviour, not parallel speedup.) *)

let bench007_out = ref "bench/BENCH_007.json"

let bench007 () =
  heading "bench007"
    (Printf.sprintf
       "Lock-free spine & work-stealing executors -> %s%s"
       !bench007_out
       (if !bench_quick then " (--quick)" else ""));
  let module J = Msmr_obs.Json in
  let quick = !bench_quick in
  (* --- sim: steal on/off across skew --- *)
  let warmup, duration = if quick then (0.05, 0.1) else (0.2, 0.5) in
  (* 150 clients: enough to saturate the 4-executor pool (80 K req/s)
     when balanced, few enough that the cold minority cannot mask the
     executor-0 convoy under fixed routing (closed-loop clients have no
     think time, so a large cold population would simply speed up and
     fill the idle executors). *)
  let sim_run ~skew ~steal =
    let p = Params.default ~n:3 ~cores:16 () in
    Jp.run
      { p with
        n_clients = 150;
        warmup;
        duration;
        costs = { p.costs with exec_per_req = 50e-6 };
        exec_threads = 4;
        steal;
        skew }
  in
  let skews = [ 0.0; 0.5; 0.9 ] in
  let rows =
    List.map
      (fun skew ->
         let off = sim_run ~skew ~steal:false in
         let on = sim_run ~skew ~steal:true in
         (skew, off, on))
      skews
  in
  Printf.printf
    "steal vs fixed routing (n=3, 16 cores, 4 executors, exec-bound):\n";
  Printf.printf "%6s %16s %16s %8s %8s\n" "skew" "fixed req/s" "steal req/s"
    "speedup" "steals";
  List.iter
    (fun (skew, (off : Jp.result), (on : Jp.result)) ->
       Printf.printf "%6.2f %16.1f %16.1f %8.2f %8d\n%!" skew (k off.throughput)
         (k on.throughput)
         (on.throughput /. off.throughput)
         on.steals)
    rows;
  let hot_speedup =
    let _, off, on = List.find (fun (s, _, _) -> s = 0.9) rows in
    on.Jp.throughput /. off.Jp.throughput
  in
  Printf.printf "steal speedup at skew 0.9: %.2fx (gate >= 1.5)\n%!"
    hot_speedup;
  (* --- live: spine Blocked time, mutex vs lock-free rings --- *)
  let module R = Msmr_runtime in
  let live_dur = if quick then 0.6 else 1.5 in
  let n_clients = 8 in
  let live_measure ~lockfree =
    let cfg =
      { (Msmr_consensus.Config.default ~n:3) with
        max_batch_delay_s = 0.001;
        lockfree;
        steal = lockfree }
    in
    let cluster =
      R.Replica.Cluster.create ~cfg ~executor_threads:2
        ~service:(fun () -> R.Service.null ())
        ()
    in
    Fun.protect ~finally:(fun () -> R.Replica.Cluster.stop cluster)
    @@ fun () ->
    ignore (R.Replica.Cluster.await_leader cluster);
    let stop_at =
      Int64.add (Msmr_platform.Mclock.now_ns ())
        (Msmr_platform.Mclock.ns_of_s live_dur)
    in
    let completed = Atomic.make 0 in
    let workers =
      List.init n_clients (fun i ->
          Thread.create
            (fun () ->
               let client =
                 R.Client.create ~timeout_s:0.5 ~cluster ~client_id:(i + 1) ()
               in
               let payload = Bytes.make 112 'x' in
               while
                 Int64.compare (Msmr_platform.Mclock.now_ns ()) stop_at < 0
               do
                 ignore (R.Client.call client payload);
                 ignore (Atomic.fetch_and_add completed 1)
               done)
            ())
    in
    (* Discard warm-up, as the paper's profiling does; everything after
       the reset is the measured window. *)
    Msmr_platform.Mclock.sleep_s (0.25 *. live_dur);
    Msmr_platform.Thread_state.reset_all ();
    Atomic.set completed 0;
    let t0 = Msmr_platform.Mclock.now_ns () in
    List.iter Thread.join workers;
    let measured_s =
      Int64.to_float (Int64.sub (Msmr_platform.Mclock.now_ns ()) t0) /. 1e9
    in
    (* Snapshot before [Cluster.stop]: stopping unregisters handles. *)
    let blocked_ns =
      List.fold_left
        (fun acc ((_ : string), (tot : Msmr_platform.Thread_state.totals)) ->
           Int64.add acc tot.Msmr_platform.Thread_state.blocked_ns)
        0L
        (Msmr_platform.Thread_state.snapshot_all ())
    in
    (Atomic.get completed, measured_s, Int64.to_float blocked_ns /. 1e6)
  in
  let mu_completed, mu_s, mu_blocked_ms = live_measure ~lockfree:false in
  let lf_completed, lf_s, lf_blocked_ms = live_measure ~lockfree:true in
  let blocked_reduction = mu_blocked_ms /. Float.max lf_blocked_ms 1e-3 in
  Printf.printf
    "live spine (n=3, %d clients): mutex %d reqs, blocked %.2f ms | \
     lock-free %d reqs, blocked %.2f ms | reduction %.1fx (gate >= 5)\n%!"
    n_clients mu_completed mu_blocked_ms lf_completed lf_blocked_ms
    blocked_reduction;
  let sim_point (skew, (off : Jp.result), (on : Jp.result)) =
    J.Obj
      [ ("skew", J.Float skew);
        ("nosteal_rps", J.Float off.throughput);
        ("steal_rps", J.Float on.throughput);
        ("speedup", J.Float (on.throughput /. off.throughput));
        ("steals", J.Int on.steals) ]
  in
  let live_obj completed s blocked_ms =
    J.Obj
      [ ("completed", J.Int completed);
        ("throughput_rps", J.Float (float_of_int completed /. s));
        ("blocked_ms", J.Float blocked_ms) ]
  in
  let json =
    J.Obj
      [ ("bench", J.String "BENCH_007");
        ("source", J.String "bench/main.exe bench007");
        ("quick", J.Bool quick);
        ( "sim",
          J.Obj
            [ ("n", J.Int 3);
              ("cores", J.Int 16);
              ("exec_threads", J.Int 4);
              ("n_clients", J.Int 150);
              ("exec_per_req_us", J.Float 50.0);
              ("points", J.List (List.map sim_point rows));
              ("steal_speedup_hot", J.Float hot_speedup) ] );
        ( "live",
          J.Obj
            [ ("n", J.Int 3);
              ("n_clients", J.Int n_clients);
              ("executor_threads", J.Int 2);
              ("mutex", live_obj mu_completed mu_s mu_blocked_ms);
              ("lockfree", live_obj lf_completed lf_s lf_blocked_ms);
              ("blocked_reduction", J.Float blocked_reduction) ] ) ]
  in
  let oc = open_out !bench007_out in
  output_string oc (J.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n%!" !bench007_out

(* ------------------------------------------------------------------ *)
(* bench008: the read-heavy fast path (leader leases). Sweep of the
   simulated cluster (n=5, 8 cores) over

     read mix      95/5 and 50/50 reads/writes
     read path     ordered  (lease off: reads ride Batcher/Paxos — the
                             ordered-read baseline)
                   lease    (linearizable reads at the leaseholder)
                   stale    (bounded-staleness reads spread over all
                             replicas)
     groups        1 and 4

   The ordered baseline is leader-NIC-bound like any write workload;
   linearizable leases lift the Batcher/Paxos cost but still converge on
   one leader's NIC; bounded-staleness reads are the tentpole — every
   replica's NIC serves its share, so read throughput scales with the
   cluster. Gate: stale/ordered >= 5 at 95/5, groups=1. *)

let bench008_out = ref "bench/BENCH_008.json"

let bench008 () =
  heading "bench008"
    (Printf.sprintf "Read-heavy fast path (leases) -> %s%s" !bench008_out
       (if !bench_quick then " (--quick)" else ""));
  let module J = Msmr_obs.Json in
  let quick = !bench_quick in
  let warmup, duration, n_clients =
    if quick then (0.05, 0.15, 300) else (0.2, 0.5, 1200)
  in
  let run ~ratio ~groups ~lease ~stale =
    let p = Params.default ~n:5 ~cores:8 () in
    Jp.run
      { p with
        groups;
        n_clients;
        warmup;
        duration;
        read_ratio = ratio;
        lease;
        stale_reads = stale;
        clock_skew = 0.002;
        lease_duration = 0.5 }
  in
  let modes =
    [ ("ordered", false, false); ("lease", true, false);
      ("stale", true, true) ]
  in
  Printf.printf "read fast path (n=5, 8 cores, %d clients):\n" n_clients;
  Printf.printf "%6s %7s %8s %12s %10s %8s %8s\n" "mix" "groups" "mode"
    "total req/s" "reads/s" "rejects" "safe";
  let rows =
    List.concat_map
      (fun ratio ->
         List.concat_map
           (fun groups ->
              List.map
                (fun (mode, lease, stale) ->
                   let r = run ~ratio ~groups ~lease ~stale in
                   let reads_rps =
                     float_of_int r.Jp.reads_completed /. duration
                   in
                   Printf.printf "%6.2f %7d %8s %12.1f %10.1f %8d %8b\n%!"
                     ratio groups mode (k r.throughput) (k reads_rps)
                     r.read_rejects r.safety_ok;
                   (ratio, groups, mode, r))
                modes)
           [ 1; 4 ])
      [ 0.95; 0.5 ]
  in
  let rps ratio groups mode =
    let _, _, _, r =
      List.find
        (fun (ra, g, m, _) -> ra = ratio && g = groups && m = mode)
        rows
    in
    r.Jp.throughput
  in
  let stale_speedup = rps 0.95 1 "stale" /. rps 0.95 1 "ordered" in
  Printf.printf
    "stale-read speedup over the ordered baseline at 95/5, groups=1: %.2fx \
     (gate >= 5)\n%!"
    stale_speedup;
  let point (ratio, groups, mode, (r : Jp.result)) =
    J.Obj
      [ ("read_ratio", J.Float ratio);
        ("groups", J.Int groups);
        ("mode", J.String mode);
        ("throughput_rps", J.Float r.throughput);
        ("reads_rps", J.Float (float_of_int r.reads_completed /. duration));
        ("read_rejects", J.Int r.read_rejects);
        ("stale_answers", J.Int r.stale_answers);
        ("safety_ok", J.Bool r.safety_ok) ]
  in
  let json =
    J.Obj
      [ ("bench", J.String "BENCH_008");
        ("source", J.String "bench/main.exe bench008");
        ("quick", J.Bool quick);
        ("n", J.Int 5);
        ("cores", J.Int 8);
        ("n_clients", J.Int n_clients);
        ("lease_duration_s", J.Float 0.5);
        ("clock_skew_s", J.Float 0.002);
        ("points", J.List (List.map point rows));
        ("stale_speedup_95_g1", J.Float stale_speedup) ]
  in
  let oc = open_out !bench008_out in
  output_string oc (J.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n%!" !bench008_out

(* ------------------------------------------------------------------ *)
(* bench009: early scheduling + optimistic speculative execution
   (DESIGN.md section 16). Sweep of the simulated cluster (n=3, 8
   cores, 4 executors, work-stealing) over

     speculation   off (ordered execution after decide — the PR 7
                       baseline) and on (pre-dispatch at ingress +
                       optimistic execution against predicted order)
     skew          0.0 (uniform keys) and 0.9 (hot-key convoy)
     groups        1 and 4

   The headline is the commit->execute gap: with speculation on, the
   optimistic result is already staged when the decide arrives, so the
   decide->reply latency collapses to a confirm. Gate:
   ce_off / ce_on >= 2 at skew 0.9, groups=1.

   A chaos-reorder soak then makes rollback falsifiable: the leader
   crashes mid-speculation (plus a forced-mispredict floor pattern),
   every open frame must abort, the linearizability verdict must hold,
   and a rerun must be bit-identical. *)

let bench009_out = ref "bench/BENCH_009.json"

let bench009 () =
  heading "bench009"
    (Printf.sprintf
       "Speculative execution: commit->execute gap -> %s%s" !bench009_out
       (if !bench_quick then " (--quick)" else ""));
  let module J = Msmr_obs.Json in
  let module F = Msmr_sim.Sfault in
  let quick = !bench_quick in
  let warmup, duration, n_clients =
    if quick then (0.05, 0.2, 200) else (0.2, 0.8, 400)
  in
  let run ~spec ~skew ~groups =
    let p = Params.default ~n:3 ~cores:8 () in
    Jp.run
      { p with
        groups;
        n_clients;
        warmup;
        duration;
        exec_threads = 4;
        steal = groups = 1;
        skew;
        speculate = spec }
  in
  Printf.printf
    "speculative execution (n=3, 8 cores, 4 executors, %d clients):\n"
    n_clients;
  Printf.printf "%5s %7s %5s %12s %10s %9s %9s %8s %6s\n" "skew" "groups"
    "spec" "total req/s" "ce lat" "dispatch" "confirm" "abort" "safe";
  let rows =
    List.concat_map
      (fun skew ->
         List.concat_map
           (fun groups ->
              List.map
                (fun spec ->
                   let r = run ~spec ~skew ~groups in
                   Printf.printf
                     "%5.2f %7d %5s %12.1f %9.1fus %9d %9d %8d %6b\n%!"
                     skew groups
                     (if spec then "on" else "off")
                     (k r.Jp.throughput)
                     (1e6 *. r.Jp.commit_exec_latency)
                     r.Jp.spec_dispatched r.Jp.spec_confirmed
                     r.Jp.spec_aborted r.Jp.safety_ok;
                   (skew, groups, spec, r))
                [ false; true ])
           [ 1; 4 ])
      [ 0.0; 0.9 ]
  in
  let ce skew groups spec =
    let _, _, _, r =
      List.find
        (fun (s, g, sp, _) -> s = skew && g = groups && sp = spec)
        rows
    in
    r.Jp.commit_exec_latency
  in
  let ce_speedup =
    let off = ce 0.9 1 false and on = ce 0.9 1 true in
    if on > 0. then off /. on else 0.
  in
  Printf.printf
    "commit->execute speedup spec-on vs off at skew 0.9, groups=1: %.2fx \
     (gate >= 2)\n%!"
    ce_speedup;
  (* --- chaos-reorder soak: leader crash mid-speculation + forced
     mispredicts; every open frame aborts, safety holds, reruns are
     bit-identical --- *)
  let crash_at, restart_at, chaos_duration =
    if quick then (0.4, 0.7, 1.0) else (0.8, 1.4, 2.0)
  in
  let chaos_p =
    let p = Params.default ~n:3 ~cores:8 () in
    { p with
      n_clients = 100;
      warmup = 0.2;
      duration = chaos_duration;
      exec_threads = 4;
      steal = true;
      skew = 0.5;
      speculate = true;
      mispredict_ratio = 0.1;
      faults = [ F.Crash { node = 0; at = crash_at; restart_at = Some restart_at } ];
      chaos_seed = 7;
      chaos_client_timeout = 0.25 }
  in
  let c1 = Jp.run chaos_p in
  let c2 = Jp.run chaos_p in
  let fp (r : Jp.result) =
    ( r.completed, r.spec_dispatched, r.spec_confirmed, r.spec_aborted,
      r.view_changes, r.executed_min, r.executed_max, r.events )
  in
  let chaos_deterministic = fp c1 = fp c2 in
  Printf.printf
    "chaos soak (leader crash %.1fs, restart %.1fs, mispredict 0.10): \
     dispatched %d | confirmed %d | aborted %d | views %d | safe %b | \
     deterministic %b\n%!"
    crash_at restart_at c1.Jp.spec_dispatched c1.Jp.spec_confirmed
    c1.Jp.spec_aborted c1.Jp.view_changes c1.Jp.safety_ok chaos_deterministic;
  let point (skew, groups, spec, (r : Jp.result)) =
    J.Obj
      [ ("skew", J.Float skew);
        ("groups", J.Int groups);
        ("speculate", J.Bool spec);
        ("throughput_rps", J.Float r.throughput);
        ("commit_exec_latency_s", J.Float r.commit_exec_latency);
        ("spec_dispatched", J.Int r.spec_dispatched);
        ("spec_confirmed", J.Int r.spec_confirmed);
        ("spec_aborted", J.Int r.spec_aborted);
        ("safety_ok", J.Bool r.safety_ok) ]
  in
  let json =
    J.Obj
      [ ("bench", J.String "BENCH_009");
        ("source", J.String "bench/main.exe bench009");
        ("quick", J.Bool quick);
        ("n", J.Int 3);
        ("cores", J.Int 8);
        ("exec_threads", J.Int 4);
        ("n_clients", J.Int n_clients);
        ("points", J.List (List.map point rows));
        ("ce_speedup_skew09_g1", J.Float ce_speedup);
        ( "chaos",
          J.Obj
            [ ("crash_at_s", J.Float crash_at);
              ("restart_at_s", J.Float restart_at);
              ("mispredict_ratio", J.Float 0.1);
              ("chaos_seed", J.Int 7);
              ("spec_dispatched", J.Int c1.Jp.spec_dispatched);
              ("spec_confirmed", J.Int c1.Jp.spec_confirmed);
              ("spec_aborted", J.Int c1.Jp.spec_aborted);
              ("view_changes", J.Int c1.Jp.view_changes);
              ("safety_ok", J.Bool c1.Jp.safety_ok);
              ("deterministic", J.Bool chaos_deterministic) ] ) ]
  in
  let oc = open_out !bench009_out in
  output_string oc (J.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n%!" !bench009_out

(* bench010: online membership change under load (DESIGN.md section
   17). Simulated arms on the capacity-5 cluster (members0 = {0,1,2}):

     static     3 voters for the whole run (baseline; a no-op link rule
                keeps the chaos machinery engaged so both arms pay the
                same bookkeeping)
     reconfig   grow 3->5 mid-run (add-learner + promote per joiner),
                then shrink 5->3 -- six consensus-ordered epochs, all
                under the same closed-loop load
     crash      grow 3->4 with the joiner crashing mid state transfer
                and restarting; the schedule must still complete

   Gates: the reconfig arm stays linearizable, completes the full
   schedule (epoch 6), and keeps >= 0.9x the static arm's throughput;
   both chaos arms rerun bit-identically. A live arm then drives the
   real runtime through the same 3->5->3 walk: spares join via
   snapshot-based state transfer while closed-loop clients keep
   calling, removed nodes fence themselves, and an exactly-once sum
   check audits the whole run. *)

let bench010_out = ref "bench/BENCH_010.json"

let bench010 () =
  heading "bench010"
    (Printf.sprintf
       "Online reconfiguration: grow/shrink under load -> %s%s"
       !bench010_out
       (if !bench_quick then " (--quick)" else ""));
  let module J = Msmr_obs.Json in
  let module F = Msmr_sim.Sfault in
  let quick = !bench_quick in
  let warmup, duration, n_clients =
    if quick then (0.05, 0.8, 60) else (0.2, 2.4, 200)
  in
  let grow_at, shrink_at = if quick then (0.2, 0.5) else (0.5, 1.5) in
  (* Active-never link rule: flips the model onto the chaos path (FD,
     drifted clocks, client timeouts) without perturbing any message,
     so the static baseline pays the same machinery as the reconfig
     arms. *)
  let noop_fault =
    F.Link
      { l_src = -1; l_dst = -1; drop = 0.; dup = 0.; delay_s = 0.;
        jitter_s = 0.; from_t = 0.; until_t = 0. }
  in
  let base () =
    let p = Params.default ~n:5 ~cores:4 () in
    { p with
      n_clients;
      warmup;
      duration;
      members0 = [ 0; 1; 2 ];
      faults = [ noop_fault ];
      chaos_seed = 7 }
  in
  let p_static = base () in
  let p_reconfig =
    { (base ()) with
      reconfig_at =
        [ (grow_at, [ 0; 1; 2; 3; 4 ]); (shrink_at, [ 0; 1; 2 ]) ] }
  in
  let fp (r : Jp.result) =
    ( r.completed, r.reconfigs_applied, r.final_epoch, r.view_changes,
      r.executed_min, r.executed_max, r.events )
  in
  let r_static = Jp.run p_static in
  let r1 = Jp.run p_reconfig in
  let r2 = Jp.run p_reconfig in
  let runs_identical = fp r1 = fp r2 in
  let tput_ratio =
    if r_static.Jp.throughput > 0. then
      r1.Jp.throughput /. r_static.Jp.throughput
    else 0.
  in
  Printf.printf
    "sim (capacity 5, members {0,1,2}, %d clients, %.1fs):\n" n_clients
    duration;
  Printf.printf "%-10s %12s %8s %7s %7s %6s\n" "arm" "total req/s"
    "epochs" "applied" "views" "safe";
  let row name (r : Jp.result) =
    Printf.printf "%-10s %12.1f %8d %7d %7d %6b\n%!" name
      (k r.Jp.throughput) r.Jp.final_epoch r.Jp.reconfigs_applied
      r.Jp.view_changes r.Jp.safety_ok
  in
  row "static" r_static;
  row "reconfig" r1;
  Printf.printf
    "reconfig/static throughput ratio %.3f (gate >= 0.9) | \
     bit-identical rerun %b\n%!"
    tput_ratio runs_identical;
  (* --- joiner crashes mid state transfer --- *)
  let p_crash =
    { (base ()) with
      reconfig_at = [ (grow_at, [ 0; 1; 2; 3 ]) ];
      faults =
        [ F.Crash
            { node = 3;
              at = grow_at +. 0.05;
              restart_at = Some (grow_at +. 0.2) } ] }
  in
  let c1 = Jp.run p_crash in
  let c2 = Jp.run p_crash in
  let crash_identical = fp c1 = fp c2 in
  row "crash" c1;
  Printf.printf
    "joiner crash mid-transfer: schedule completed %b | safe %b | \
     bit-identical rerun %b\n%!"
    (c1.Jp.final_epoch >= 2) c1.Jp.safety_ok crash_identical;
  (* --- live arm: the real runtime walks 3 -> 5 -> 3 under load --- *)
  let module R = Msmr_runtime in
  let live_clients = if quick then 2 else 4 in
  let steady_s = if quick then 0.2 else 0.6 in
  let cfg =
    { (Msmr_consensus.Config.default ~n:5) with
      members0 = [ 0; 1; 2 ];
      max_batch_delay_s = 0.002;
      snapshot_every = 32;
      log_retain = 8 }
  in
  let cluster =
    R.Replica.Cluster.create ~cfg
      ~service:(fun () -> R.Service.accumulator ())
      ()
  in
  Fun.protect ~finally:(fun () -> R.Replica.Cluster.stop cluster)
  @@ fun () ->
  ignore (R.Replica.Cluster.await_leader cluster);
  let replicas = R.Replica.Cluster.replicas cluster in
  let stop = Atomic.make false in
  let completed = Atomic.make 0 in
  let loaders =
    List.init live_clients (fun i ->
        Thread.create
          (fun () ->
             let client =
               R.Client.create ~cluster ~client_id:(1 + i) ()
             in
             let one = Bytes.of_string "1" in
             while not (Atomic.get stop) do
               ignore (R.Client.call client one);
               ignore (Atomic.fetch_and_add completed 1)
             done)
          ())
  in
  let t0 = Unix.gettimeofday () in
  let live_result =
    Fun.protect
      ~finally:(fun () ->
          Atomic.set stop true;
          List.iter Thread.join loaders)
    @@ fun () ->
    Msmr_platform.Mclock.sleep_s steady_s;  (* build a log worth transferring *)
    let t_grow0 = Unix.gettimeofday () in
    R.Replica.Cluster.join cluster 3;
    R.Replica.Cluster.join cluster 4;
    let grow_s = Unix.gettimeofday () -. t_grow0 in
    Msmr_platform.Mclock.sleep_s steady_s;  (* steady at five voters *)
    let t_shrink0 = Unix.gettimeofday () in
    R.Replica.Cluster.decommission cluster 4;
    R.Replica.Cluster.decommission cluster 3;
    let shrink_s = Unix.gettimeofday () -. t_shrink0 in
    Msmr_platform.Mclock.sleep_s steady_s;
    (grow_s, shrink_s)
  in
  let grow_s, shrink_s = live_result in
  let elapsed = Unix.gettimeofday () -. t0 in
  let done_calls = Atomic.get completed in
  let live_tput = float_of_int done_calls /. elapsed in
  (* Exactly-once audit: every completed "1" executed exactly once. *)
  let verifier = R.Client.create ~cluster ~client_id:97 () in
  let final_sum =
    int_of_string (Bytes.to_string (R.Client.call verifier (Bytes.of_string "0")))
  in
  let exactly_once = final_sum = done_calls in
  let leader = R.Replica.Cluster.leader cluster in
  let m_final = R.Replica.membership leader in
  let final_voters = Msmr_consensus.Membership.n_voters m_final in
  let joiner_snapshots = R.Replica.snapshot_installs_count replicas.(3) in
  let leader_reconfigs = R.Replica.reconfigs_applied_count leader in
  let fenced =
    (not (R.Replica.is_member replicas.(3)))
    && not (R.Replica.is_member replicas.(4))
  in
  Printf.printf
    "live (capacity 5, %d clients): %.0f req/s | %d calls | grow %.2fs | \
     shrink %.2fs | joiner snapshot installs %d | epochs applied %d | \
     final voters %d | removed fenced %b | exactly-once %b\n%!"
    live_clients live_tput done_calls grow_s shrink_s joiner_snapshots
    leader_reconfigs final_voters fenced exactly_once;
  let sim_point name (r : Jp.result) =
    ( name,
      J.Obj
        [ ("throughput_rps", J.Float r.throughput);
          ("completed", J.Int r.completed);
          ("final_epoch", J.Int r.final_epoch);
          ("reconfigs_applied", J.Int r.reconfigs_applied);
          ("view_changes", J.Int r.view_changes);
          ("safety_ok", J.Bool r.safety_ok) ] )
  in
  let json =
    J.Obj
      [ ("bench", J.String "BENCH_010");
        ("source", J.String "bench/main.exe bench010");
        ("quick", J.Bool quick);
        ("capacity", J.Int 5);
        ("members0", J.List (List.map (fun i -> J.Int i) [ 0; 1; 2 ]));
        ("n_clients", J.Int n_clients);
        ( "sim",
          J.Obj
            [ sim_point "static" r_static;
              sim_point "reconfig" r1;
              sim_point "crash_join" c1;
              ("throughput_ratio", J.Float tput_ratio);
              ("runs_identical", J.Bool runs_identical);
              ("crash_runs_identical", J.Bool crash_identical) ] );
        ( "live",
          J.Obj
            [ ("n_clients", J.Int live_clients);
              ("throughput_rps", J.Float live_tput);
              ("completed", J.Int done_calls);
              ("grow_s", J.Float grow_s);
              ("shrink_s", J.Float shrink_s);
              ("joiner_snapshot_installs", J.Int joiner_snapshots);
              ("reconfigs_applied", J.Int leader_reconfigs);
              ("final_voters", J.Int final_voters);
              ("removed_fenced", J.Bool fenced);
              ("exactly_once_ok", J.Bool exactly_once) ] ) ]
  in
  let oc = open_out !bench010_out in
  output_string oc (J.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n%!" !bench010_out

(* ------------------------------------------------------------------ *)
(* Observability: --trace FILE runs a short traced simulation and writes
   a Chrome trace_event file; --metrics FILE dumps the metrics registry.
   See docs/OBSERVABILITY.md. *)

let trace_run ~trace_file () =
  heading "trace" "Traced simulator run (Chrome trace_event export)";
  let p = Params.default ~profile:Params.parapluie ~n:3 ~cores:24 () in
  let p = { p with warmup = 0.3; duration = 0.3 } in
  let r = Jp.run ~trace:true p in
  let tr = Option.get r.trace in
  Msmr_obs.Trace_export.write_file tr trace_file;
  Printf.printf
    "wrote %s (open in https://ui.perfetto.dev or chrome://tracing)\n"
    trace_file;
  let dropped = Msmr_obs.Trace_export.total_dropped tr in
  if dropped > 0 then
    Printf.printf "warning: %d events dropped to ring wrap-around\n" dropped;
  (* Cross-check: per-thread span totals in the trace must reproduce the
     simulator's exact Sstats integrals (the spans *are* the
     accounting, so any divergence is a bug or ring overflow). *)
  let span = Msmr_obs.Trace_export.span_totals tr in
  let span_s pid tname state =
    match List.assoc_opt (pid, tname, state) span with
    | Some ns -> Int64.to_float ns /. 1e9
    | None -> 0.
  in
  let worst = ref 0. in
  Array.iteri
    (fun pid (rep : Jp.replica_report) ->
       List.iter
         (fun (tname, (tot : Sstats.totals)) ->
            List.iter
              (fun (state, v) ->
                 let dev = Float.abs (span_s pid tname state -. v) in
                 if dev > !worst then worst := dev)
              [ ("busy", tot.busy); ("blocked", tot.blocked);
                ("waiting", tot.waiting); ("other", tot.other) ])
         rep.threads)
    r.replicas;
  let worst_pct = 100. *. !worst /. p.duration in
  Printf.printf
    "span totals vs Sstats integrals: worst deviation %.3f%% of the run%s\n"
    worst_pct
    (if worst_pct <= 1.0 then " (ok, within 1%)" else " (MISMATCH)");
  (* The trace must cover the module taxonomy, not just one stage. *)
  let cats = Hashtbl.create 8 in
  List.iter
    (fun trk ->
       List.iter
         (fun (e : Msmr_obs.Trace.event) ->
            match e.ph with
            | Msmr_obs.Trace.Span _ -> Hashtbl.replace cats e.cat ()
            | _ -> ())
         (Msmr_obs.Trace.events trk))
    (Msmr_obs.Trace.tracks tr);
  let have = Hashtbl.fold (fun c () acc -> c :: acc) cats [] in
  Printf.printf "span modules present: %s\n%!"
    (String.concat ", " (List.sort compare have))

let experiments =
  [ ("fig1", fig1); ("fig4", fig4); ("fig5", fig5); ("fig6", fig6);
    ("fig7", fig7); ("fig8", fig8); ("fig9", fig9); ("tab1", tab1);
    ("fig10", fig10); ("tab2", tab2); ("fig11", fig11); ("tab3", tab3);
    ("fig12", fig12); ("fig13", fig13); ("fig14", fig14); ("ext", ext);
    ("live", live); ("live-mono", live_mono); ("ablation", ablation);
    ("micro", micro); ("bench002", bench002); ("bench003", bench003);
    ("bench004", bench004); ("bench005", bench005); ("bench006", bench006);
    ("bench007", bench007); ("bench008", bench008);
    ("bench009", bench009); ("bench010", bench010) ]

let () =
  let rec parse ids trace metrics = function
    | [] -> (List.rev ids, trace, metrics)
    | "--trace" :: file :: rest -> parse ids (Some file) metrics rest
    | "--metrics" :: file :: rest -> parse ids trace (Some file) rest
    | "--bench-out" :: file :: rest ->
      bench_out := file;
      parse ids trace metrics rest
    | "--bench003-out" :: file :: rest ->
      bench003_out := file;
      parse ids trace metrics rest
    | "--bench004-out" :: file :: rest ->
      bench004_out := file;
      parse ids trace metrics rest
    | "--bench005-out" :: file :: rest ->
      bench005_out := file;
      parse ids trace metrics rest
    | "--bench006-out" :: file :: rest ->
      bench006_out := file;
      parse ids trace metrics rest
    | "--bench007-out" :: file :: rest ->
      bench007_out := file;
      parse ids trace metrics rest
    | "--bench008-out" :: file :: rest ->
      bench008_out := file;
      parse ids trace metrics rest
    | "--bench009-out" :: file :: rest ->
      bench009_out := file;
      parse ids trace metrics rest
    | "--bench010-out" :: file :: rest ->
      bench010_out := file;
      parse ids trace metrics rest
    | "--quick" :: rest ->
      bench_quick := true;
      parse ids trace metrics rest
    | ("--trace" | "--metrics" | "--bench-out" | "--bench003-out"
      | "--bench004-out" | "--bench005-out" | "--bench006-out"
      | "--bench007-out" | "--bench008-out" | "--bench009-out"
      | "--bench010-out") :: [] ->
      Printf.eprintf
        "usage: main [EXPERIMENT..] [--trace FILE] [--metrics FILE]\n\
        \       [--quick] [--bench-out FILE] [--bench003-out FILE]\n\
        \       [--bench004-out FILE] [--bench005-out FILE]\n\
        \       [--bench006-out FILE] [--bench007-out FILE]\n\
        \       [--bench008-out FILE] [--bench009-out FILE]\n\
        \       [--bench010-out FILE]\n";
      exit 2
    | id :: rest -> parse (id :: ids) trace metrics rest
  in
  let ids, trace, metrics =
    parse [] None None (List.tl (Array.to_list Sys.argv))
  in
  let requested =
    match ids with
    | [] when trace <> None || metrics <> None -> []
    | [] -> List.map fst experiments
    | ids -> ids
  in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun id ->
       match List.assoc_opt id experiments with
       | Some f -> f ()
       | None ->
         Printf.eprintf "unknown experiment %S; known: %s\n" id
           (String.concat " " (List.map fst experiments));
         exit 1)
    requested;
  (match trace with
   | Some file -> trace_run ~trace_file:file ()
   | None -> ());
  (match metrics with
   | Some file ->
     Msmr_obs.Metrics.write_file file;
     Printf.printf "wrote metrics snapshot to %s\n%!" file
   | None -> ());
  Printf.printf "\n(total bench wall time: %.0fs)\n%!"
    (Unix.gettimeofday () -. t0)
