#!/bin/sh
# Repository verify script: build, tests, docs, and observability smoke.
#
# Tier-1 (ROADMAP.md): dune build && dune runtest.
# On top of that this script builds the odoc documentation (when odoc is
# installed) and smoke-tests the trace exporter so docs and the
# observability layer can't rot silently.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

if command -v odoc >/dev/null 2>&1; then
  echo "== dune build @doc =="
  dune build @doc
else
  echo "== dune build @doc skipped (odoc not installed) =="
fi

echo "== trace export smoke =="
trace_file="$(mktemp /tmp/msmr-verify-trace.XXXXXX.json)"
metrics_file="$(mktemp /tmp/msmr-verify-metrics.XXXXXX.json)"
bench_file="$(mktemp /tmp/msmr-verify-bench.XXXXXX.json)"
bench3_file="$(mktemp /tmp/msmr-verify-bench3.XXXXXX.json)"
bench4_file="$(mktemp /tmp/msmr-verify-bench4.XXXXXX.json)"
bench5_file="$(mktemp /tmp/msmr-verify-bench5.XXXXXX.json)"
trap 'rm -f "$trace_file" "$metrics_file" "$bench_file" "$bench3_file" "$bench4_file" "$bench5_file"' EXIT

dune exec bin/sim_probe.exe -- --trace "$trace_file" --metrics "$metrics_file"

if command -v jq >/dev/null 2>&1; then
  jq empty "$trace_file"
  jq empty "$metrics_file"
  events=$(jq '.traceEvents | length' "$trace_file")
  spans=$(jq '[.traceEvents[] | select(.ph == "X")] | length' "$trace_file")
  cats=$(jq -r '[.traceEvents[] | select(.ph == "X") | .cat] | unique | length' "$trace_file")
  echo "trace: $events events, $spans spans, $cats span categories"
  [ "$spans" -gt 0 ] || { echo "FAIL: no spans in trace" >&2; exit 1; }
  [ "$cats" -ge 3 ] || { echo "FAIL: fewer than 3 span categories" >&2; exit 1; }
else
  # No jq: at least ensure both files are non-empty and look like JSON.
  for f in "$trace_file" "$metrics_file"; do
    [ -s "$f" ] || { echo "FAIL: $f empty" >&2; exit 1; }
    case "$(head -c1 "$f")" in
      '{' | '[') ;;
      *) echo "FAIL: $f does not look like JSON" >&2; exit 1 ;;
    esac
  done
  echo "trace: jq not installed, checked files are non-empty JSON"
fi

echo "== bench002 smoke (quick) =="
dune exec bench/main.exe -- bench002 --quick --bench-out "$bench_file"

if command -v jq >/dev/null 2>&1; then
  jq empty "$bench_file"
  cores_pts=$(jq '.core_scaling.points | length' "$bench_file")
  exec_pts=$(jq '.executor_scaling.points | length' "$bench_file")
  bad=$(jq '[.core_scaling.points[], .executor_scaling.points[]
             | select(.throughput_rps <= 0)] | length' "$bench_file")
  echo "bench002: $cores_pts core points, $exec_pts executor points"
  [ "$cores_pts" -eq 3 ] || { echo "FAIL: expected 3 core points" >&2; exit 1; }
  [ "$exec_pts" -eq 4 ] || { echo "FAIL: expected 4 executor points" >&2; exit 1; }
  [ "$bad" -eq 0 ] || { echo "FAIL: non-positive throughput in bench002" >&2; exit 1; }
else
  [ -s "$bench_file" ] || { echo "FAIL: $bench_file empty" >&2; exit 1; }
  case "$(head -c1 "$bench_file")" in
    '{') ;;
    *) echo "FAIL: $bench_file does not look like JSON" >&2; exit 1 ;;
  esac
  echo "bench002: jq not installed, checked file is non-empty JSON"
fi

echo "== bench003 smoke (quick) =="
dune exec bench/main.exe -- bench003 --quick --bench003-out "$bench3_file"

if command -v jq >/dev/null 2>&1; then
  jq empty "$bench3_file"
  pts=$(jq '.points | length' "$bench3_file")
  bad=$(jq '[.points[] | select(.serial_rps <= 0 or .group_rps <= 0)] | length' \
        "$bench3_file")
  # The tentpole's headline claim: group commit >= 3x serial fsync on
  # every swept core count >= 8.
  slow=$(jq '[.points[] | select(.cores >= 8 and .group_rps < 3 * .serial_rps)]
             | length' "$bench3_file")
  echo "bench003: $pts durable points"
  [ "$pts" -eq 3 ] || { echo "FAIL: expected 3 durable points" >&2; exit 1; }
  [ "$bad" -eq 0 ] || { echo "FAIL: non-positive throughput in bench003" >&2; exit 1; }
  [ "$slow" -eq 0 ] || { echo "FAIL: group commit < 3x serial fsync at >= 8 cores" >&2; exit 1; }
else
  [ -s "$bench3_file" ] || { echo "FAIL: $bench3_file empty" >&2; exit 1; }
  case "$(head -c1 "$bench3_file")" in
    '{') ;;
    *) echo "FAIL: $bench3_file does not look like JSON" >&2; exit 1 ;;
  esac
  echo "bench003: jq not installed, checked file is non-empty JSON"
fi

echo "== bench004 smoke (quick) =="
dune exec bench/main.exe -- bench004 --quick --bench004-out "$bench4_file"

if command -v jq >/dev/null 2>&1; then
  jq empty "$bench4_file"
  pts=$(jq '.points | length' "$bench4_file")
  bad=$(jq '[.points[] | select(.static_default_rps <= 0 or .static_best_rps <= 0
                                or .adaptive_rps <= 0)] | length' "$bench4_file")
  echo "bench004 smoke: $pts adaptive points"
  [ "$pts" -gt 0 ] || { echo "FAIL: no points in bench004 smoke" >&2; exit 1; }
  [ "$bad" -eq 0 ] || { echo "FAIL: non-positive throughput in bench004 smoke" >&2; exit 1; }
else
  [ -s "$bench4_file" ] || { echo "FAIL: $bench4_file empty" >&2; exit 1; }
  case "$(head -c1 "$bench4_file")" in
    '{') ;;
    *) echo "FAIL: $bench4_file does not look like JSON" >&2; exit 1 ;;
  esac
  echo "bench004 smoke: jq not installed, checked file is non-empty JSON"
fi

echo "== bench004 committed results gate =="
bench4_committed="bench/BENCH_004.json"
[ -f "$bench4_committed" ] || { echo "FAIL: $bench4_committed missing" >&2; exit 1; }
if command -v jq >/dev/null 2>&1; then
  jq empty "$bench4_committed"
  quick=$(jq '.quick' "$bench4_committed")
  pts=$(jq '.points | length' "$bench4_committed")
  schema_bad=$(jq '[.points[] | select((.adaptive_vs_default? and .adaptive_vs_best?
                    and .tuned_wnd_final? and .tuned_bsz_final?) | not)] | length' \
               "$bench4_committed")
  # The tentpole's acceptance gates: the adaptive controller must reach
  # >= 1.2x the static default on at least one swept point, and must
  # stay within 10% of the best static configuration everywhere.
  wins=$(jq '[.points[] | select(.adaptive_vs_default >= 1.2)] | length' \
         "$bench4_committed")
  below=$(jq '[.points[] | select(.adaptive_vs_best < 0.9)] | length' \
          "$bench4_committed")
  echo "bench004 committed: $pts points, $wins at >= 1.2x default, $below below 0.9x best"
  [ "$quick" = "false" ] || { echo "FAIL: committed bench004 was a --quick run" >&2; exit 1; }
  [ "$pts" -ge 9 ] || { echo "FAIL: expected >= 9 committed bench004 points" >&2; exit 1; }
  [ "$schema_bad" -eq 0 ] || { echo "FAIL: bench004 point missing required fields" >&2; exit 1; }
  [ "$wins" -ge 1 ] || { echo "FAIL: adaptive never reached 1.2x static default" >&2; exit 1; }
  [ "$below" -eq 0 ] || { echo "FAIL: adaptive below 0.9x static best on some point" >&2; exit 1; }
else
  [ -s "$bench4_committed" ] || { echo "FAIL: $bench4_committed empty" >&2; exit 1; }
  echo "bench004 committed: jq not installed, checked file is non-empty"
fi

echo "== bench005 smoke (quick) =="
dune exec bench/main.exe -- bench005 --quick --bench005-out "$bench5_file"

if command -v jq >/dev/null 2>&1; then
  jq empty "$bench5_file"
  # The quick run is a smoke test: the fault schedule must still leave a
  # safe, converged, reproducible cluster; the throughput gates apply to
  # the committed full run below.
  ok=$(jq '[.crash.safety_ok, .soak.safety_ok, .soak.converged,
            .soak.runs_identical] | all' "$bench5_file")
  echo "bench005 smoke: safety/convergence/reproducibility = $ok"
  [ "$ok" = "true" ] || { echo "FAIL: bench005 smoke chaos run unsafe or non-deterministic" >&2; exit 1; }
else
  [ -s "$bench5_file" ] || { echo "FAIL: $bench5_file empty" >&2; exit 1; }
  case "$(head -c1 "$bench5_file")" in
    '{') ;;
    *) echo "FAIL: $bench5_file does not look like JSON" >&2; exit 1 ;;
  esac
  echo "bench005 smoke: jq not installed, checked file is non-empty JSON"
fi

echo "== bench005 committed results gate =="
bench5_committed="bench/BENCH_005.json"
[ -f "$bench5_committed" ] || { echo "FAIL: $bench5_committed missing" >&2; exit 1; }
if command -v jq >/dev/null 2>&1; then
  jq empty "$bench5_committed"
  quick=$(jq '.quick' "$bench5_committed")
  schema_bad=$(jq '[.crash, .soak, .live] | map(select(. == null)) | length' \
               "$bench5_committed")
  crash_bad=$(jq '[.crash | select((.pre_rps? and .post_rps? and .post_over_pre?
                   and .recovery_s? and .view_changes? != null) | not)] | length' \
              "$bench5_committed")
  # Fault-injection acceptance gates: the leader crash must actually
  # have happened (a recovery was measured, views moved), recovery must
  # be bounded, post-recovery throughput must reach >= 90% of pre-crash,
  # and the seeded chaos soak must end safe, converged and bit-identical
  # across its two runs.
  ratio_ok=$(jq '.crash.post_over_pre >= 0.9' "$bench5_committed")
  rec_ok=$(jq '.crash.recovery_s > 0 and .crash.recovery_s <= 2' "$bench5_committed")
  vc_ok=$(jq '.crash.view_changes >= 1' "$bench5_committed")
  soak_ok=$(jq '[.crash.safety_ok, .soak.safety_ok, .soak.converged,
                 .soak.runs_identical] | all' "$bench5_committed")
  echo "bench005 committed: ratio_ok=$ratio_ok recovery_ok=$rec_ok views_ok=$vc_ok soak_ok=$soak_ok"
  [ "$quick" = "false" ] || { echo "FAIL: committed bench005 was a --quick run" >&2; exit 1; }
  [ "$schema_bad" -eq 0 ] || { echo "FAIL: bench005 missing crash/soak/live sections" >&2; exit 1; }
  [ "$crash_bad" -eq 0 ] || { echo "FAIL: bench005 crash section missing required fields" >&2; exit 1; }
  [ "$ratio_ok" = "true" ] || { echo "FAIL: post-recovery throughput < 0.9x pre-crash" >&2; exit 1; }
  [ "$rec_ok" = "true" ] || { echo "FAIL: recovery_s absent or out of (0, 2]" >&2; exit 1; }
  [ "$vc_ok" = "true" ] || { echo "FAIL: leader crash caused no view change" >&2; exit 1; }
  [ "$soak_ok" = "true" ] || { echo "FAIL: chaos soak unsafe, diverged or non-deterministic" >&2; exit 1; }
else
  [ -s "$bench5_committed" ] || { echo "FAIL: $bench5_committed empty" >&2; exit 1; }
  echo "bench005 committed: jq not installed, checked file is non-empty"
fi

echo "== verify OK =="
