#!/bin/sh
# Repository verify script: build, tests, docs, and observability smoke.
#
# Tier-1 (ROADMAP.md): dune build && dune runtest.
# On top of that this script builds the odoc documentation (when odoc is
# installed) and smoke-tests the trace exporter so docs and the
# observability layer can't rot silently.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== lock-free stress profile (raised QCheck iterations) =="
# The lockfree suite's QCheck properties (multi-producer exactly-once,
# SPSC FIFO across threads, per-key order under stealing) scale their
# iteration counts with MSMR_QCHECK_COUNT; run them harder here than the
# default runtest does.
MSMR_QCHECK_COUNT=120 dune exec test/test_msmr.exe -- test lockfree

if command -v odoc >/dev/null 2>&1; then
  echo "== dune build @doc =="
  dune build @doc
else
  echo "== dune build @doc skipped (odoc not installed) =="
fi

echo "== trace export smoke =="
trace_file="$(mktemp /tmp/msmr-verify-trace.XXXXXX.json)"
metrics_file="$(mktemp /tmp/msmr-verify-metrics.XXXXXX.json)"
bench_file="$(mktemp /tmp/msmr-verify-bench.XXXXXX.json)"
bench3_file="$(mktemp /tmp/msmr-verify-bench3.XXXXXX.json)"
bench4_file="$(mktemp /tmp/msmr-verify-bench4.XXXXXX.json)"
bench5_file="$(mktemp /tmp/msmr-verify-bench5.XXXXXX.json)"
bench6_file="$(mktemp /tmp/msmr-verify-bench6.XXXXXX.json)"
bench7_file="$(mktemp /tmp/msmr-verify-bench7.XXXXXX.json)"
bench8_file="$(mktemp /tmp/msmr-verify-bench8.XXXXXX.json)"
bench9_file="$(mktemp /tmp/msmr-verify-bench9.XXXXXX.json)"
bench10_file="$(mktemp /tmp/msmr-verify-bench10.XXXXXX.json)"
trap 'rm -f "$trace_file" "$metrics_file" "$bench_file" "$bench3_file" "$bench4_file" "$bench5_file" "$bench6_file" "$bench7_file" "$bench8_file" "$bench9_file" "$bench10_file"' EXIT

dune exec bin/sim_probe.exe -- --trace "$trace_file" --metrics "$metrics_file"

if command -v jq >/dev/null 2>&1; then
  jq empty "$trace_file"
  jq empty "$metrics_file"
  events=$(jq '.traceEvents | length' "$trace_file")
  spans=$(jq '[.traceEvents[] | select(.ph == "X")] | length' "$trace_file")
  cats=$(jq -r '[.traceEvents[] | select(.ph == "X") | .cat] | unique | length' "$trace_file")
  echo "trace: $events events, $spans spans, $cats span categories"
  [ "$spans" -gt 0 ] || { echo "FAIL: no spans in trace" >&2; exit 1; }
  [ "$cats" -ge 3 ] || { echo "FAIL: fewer than 3 span categories" >&2; exit 1; }
else
  # No jq: at least ensure both files are non-empty and look like JSON.
  for f in "$trace_file" "$metrics_file"; do
    [ -s "$f" ] || { echo "FAIL: $f empty" >&2; exit 1; }
    case "$(head -c1 "$f")" in
      '{' | '[') ;;
      *) echo "FAIL: $f does not look like JSON" >&2; exit 1 ;;
    esac
  done
  echo "trace: jq not installed, checked files are non-empty JSON"
fi

echo "== bench002 smoke (quick) =="
dune exec bench/main.exe -- bench002 --quick --bench-out "$bench_file"

if command -v jq >/dev/null 2>&1; then
  jq empty "$bench_file"
  cores_pts=$(jq '.core_scaling.points | length' "$bench_file")
  exec_pts=$(jq '.executor_scaling.points | length' "$bench_file")
  bad=$(jq '[.core_scaling.points[], .executor_scaling.points[]
             | select(.throughput_rps <= 0)] | length' "$bench_file")
  echo "bench002: $cores_pts core points, $exec_pts executor points"
  [ "$cores_pts" -eq 3 ] || { echo "FAIL: expected 3 core points" >&2; exit 1; }
  [ "$exec_pts" -eq 4 ] || { echo "FAIL: expected 4 executor points" >&2; exit 1; }
  [ "$bad" -eq 0 ] || { echo "FAIL: non-positive throughput in bench002" >&2; exit 1; }
else
  [ -s "$bench_file" ] || { echo "FAIL: $bench_file empty" >&2; exit 1; }
  case "$(head -c1 "$bench_file")" in
    '{') ;;
    *) echo "FAIL: $bench_file does not look like JSON" >&2; exit 1 ;;
  esac
  echo "bench002: jq not installed, checked file is non-empty JSON"
fi

echo "== bench003 smoke (quick) =="
dune exec bench/main.exe -- bench003 --quick --bench003-out "$bench3_file"

if command -v jq >/dev/null 2>&1; then
  jq empty "$bench3_file"
  pts=$(jq '.points | length' "$bench3_file")
  bad=$(jq '[.points[] | select(.serial_rps <= 0 or .group_rps <= 0)] | length' \
        "$bench3_file")
  # The tentpole's headline claim: group commit >= 3x serial fsync on
  # every swept core count >= 8.
  slow=$(jq '[.points[] | select(.cores >= 8 and .group_rps < 3 * .serial_rps)]
             | length' "$bench3_file")
  echo "bench003: $pts durable points"
  [ "$pts" -eq 3 ] || { echo "FAIL: expected 3 durable points" >&2; exit 1; }
  [ "$bad" -eq 0 ] || { echo "FAIL: non-positive throughput in bench003" >&2; exit 1; }
  [ "$slow" -eq 0 ] || { echo "FAIL: group commit < 3x serial fsync at >= 8 cores" >&2; exit 1; }
else
  [ -s "$bench3_file" ] || { echo "FAIL: $bench3_file empty" >&2; exit 1; }
  case "$(head -c1 "$bench3_file")" in
    '{') ;;
    *) echo "FAIL: $bench3_file does not look like JSON" >&2; exit 1 ;;
  esac
  echo "bench003: jq not installed, checked file is non-empty JSON"
fi

echo "== bench004 smoke (quick) =="
dune exec bench/main.exe -- bench004 --quick --bench004-out "$bench4_file"

if command -v jq >/dev/null 2>&1; then
  jq empty "$bench4_file"
  pts=$(jq '.points | length' "$bench4_file")
  bad=$(jq '[.points[] | select(.static_default_rps <= 0 or .static_best_rps <= 0
                                or .adaptive_rps <= 0)] | length' "$bench4_file")
  echo "bench004 smoke: $pts adaptive points"
  [ "$pts" -gt 0 ] || { echo "FAIL: no points in bench004 smoke" >&2; exit 1; }
  [ "$bad" -eq 0 ] || { echo "FAIL: non-positive throughput in bench004 smoke" >&2; exit 1; }
else
  [ -s "$bench4_file" ] || { echo "FAIL: $bench4_file empty" >&2; exit 1; }
  case "$(head -c1 "$bench4_file")" in
    '{') ;;
    *) echo "FAIL: $bench4_file does not look like JSON" >&2; exit 1 ;;
  esac
  echo "bench004 smoke: jq not installed, checked file is non-empty JSON"
fi

echo "== bench004 committed results gate =="
bench4_committed="bench/BENCH_004.json"
[ -f "$bench4_committed" ] || { echo "FAIL: $bench4_committed missing" >&2; exit 1; }
if command -v jq >/dev/null 2>&1; then
  jq empty "$bench4_committed"
  quick=$(jq '.quick' "$bench4_committed")
  pts=$(jq '.points | length' "$bench4_committed")
  schema_bad=$(jq '[.points[] | select((.adaptive_vs_default? and .adaptive_vs_best?
                    and .tuned_wnd_final? and .tuned_bsz_final?) | not)] | length' \
               "$bench4_committed")
  # The tentpole's acceptance gates: the adaptive controller must reach
  # >= 1.2x the static default on at least one swept point, and must
  # stay within 10% of the best static configuration everywhere.
  wins=$(jq '[.points[] | select(.adaptive_vs_default >= 1.2)] | length' \
         "$bench4_committed")
  below=$(jq '[.points[] | select(.adaptive_vs_best < 0.9)] | length' \
          "$bench4_committed")
  echo "bench004 committed: $pts points, $wins at >= 1.2x default, $below below 0.9x best"
  [ "$quick" = "false" ] || { echo "FAIL: committed bench004 was a --quick run" >&2; exit 1; }
  [ "$pts" -ge 9 ] || { echo "FAIL: expected >= 9 committed bench004 points" >&2; exit 1; }
  [ "$schema_bad" -eq 0 ] || { echo "FAIL: bench004 point missing required fields" >&2; exit 1; }
  [ "$wins" -ge 1 ] || { echo "FAIL: adaptive never reached 1.2x static default" >&2; exit 1; }
  [ "$below" -eq 0 ] || { echo "FAIL: adaptive below 0.9x static best on some point" >&2; exit 1; }
else
  [ -s "$bench4_committed" ] || { echo "FAIL: $bench4_committed empty" >&2; exit 1; }
  echo "bench004 committed: jq not installed, checked file is non-empty"
fi

echo "== bench005 smoke (quick) =="
dune exec bench/main.exe -- bench005 --quick --bench005-out "$bench5_file"

if command -v jq >/dev/null 2>&1; then
  jq empty "$bench5_file"
  # The quick run is a smoke test: the fault schedule must still leave a
  # safe, converged, reproducible cluster; the throughput gates apply to
  # the committed full run below.
  ok=$(jq '[.crash.safety_ok, .soak.safety_ok, .soak.converged,
            .soak.runs_identical] | all' "$bench5_file")
  echo "bench005 smoke: safety/convergence/reproducibility = $ok"
  [ "$ok" = "true" ] || { echo "FAIL: bench005 smoke chaos run unsafe or non-deterministic" >&2; exit 1; }
else
  [ -s "$bench5_file" ] || { echo "FAIL: $bench5_file empty" >&2; exit 1; }
  case "$(head -c1 "$bench5_file")" in
    '{') ;;
    *) echo "FAIL: $bench5_file does not look like JSON" >&2; exit 1 ;;
  esac
  echo "bench005 smoke: jq not installed, checked file is non-empty JSON"
fi

echo "== bench005 committed results gate =="
bench5_committed="bench/BENCH_005.json"
[ -f "$bench5_committed" ] || { echo "FAIL: $bench5_committed missing" >&2; exit 1; }
if command -v jq >/dev/null 2>&1; then
  jq empty "$bench5_committed"
  quick=$(jq '.quick' "$bench5_committed")
  schema_bad=$(jq '[.crash, .soak, .live] | map(select(. == null)) | length' \
               "$bench5_committed")
  crash_bad=$(jq '[.crash | select((.pre_rps? and .post_rps? and .post_over_pre?
                   and .recovery_s? and .view_changes? != null) | not)] | length' \
              "$bench5_committed")
  # Fault-injection acceptance gates: the leader crash must actually
  # have happened (a recovery was measured, views moved), recovery must
  # be bounded, post-recovery throughput must reach >= 90% of pre-crash,
  # and the seeded chaos soak must end safe, converged and bit-identical
  # across its two runs.
  ratio_ok=$(jq '.crash.post_over_pre >= 0.9' "$bench5_committed")
  rec_ok=$(jq '.crash.recovery_s > 0 and .crash.recovery_s <= 2' "$bench5_committed")
  vc_ok=$(jq '.crash.view_changes >= 1' "$bench5_committed")
  soak_ok=$(jq '[.crash.safety_ok, .soak.safety_ok, .soak.converged,
                 .soak.runs_identical] | all' "$bench5_committed")
  echo "bench005 committed: ratio_ok=$ratio_ok recovery_ok=$rec_ok views_ok=$vc_ok soak_ok=$soak_ok"
  [ "$quick" = "false" ] || { echo "FAIL: committed bench005 was a --quick run" >&2; exit 1; }
  [ "$schema_bad" -eq 0 ] || { echo "FAIL: bench005 missing crash/soak/live sections" >&2; exit 1; }
  [ "$crash_bad" -eq 0 ] || { echo "FAIL: bench005 crash section missing required fields" >&2; exit 1; }
  [ "$ratio_ok" = "true" ] || { echo "FAIL: post-recovery throughput < 0.9x pre-crash" >&2; exit 1; }
  [ "$rec_ok" = "true" ] || { echo "FAIL: recovery_s absent or out of (0, 2]" >&2; exit 1; }
  [ "$vc_ok" = "true" ] || { echo "FAIL: leader crash caused no view change" >&2; exit 1; }
  [ "$soak_ok" = "true" ] || { echo "FAIL: chaos soak unsafe, diverged or non-deterministic" >&2; exit 1; }
else
  [ -s "$bench5_committed" ] || { echo "FAIL: $bench5_committed empty" >&2; exit 1; }
  echo "bench005 committed: jq not installed, checked file is non-empty"
fi

echo "== bench006 smoke (quick) =="
dune exec bench/main.exe -- bench006 --quick --bench006-out "$bench6_file"

if command -v jq >/dev/null 2>&1; then
  jq empty "$bench6_file"
  pts=$(jq '.points | length' "$bench6_file")
  bad=$(jq '[.points[] | select(.throughput_rps <= 0)] | length' "$bench6_file")
  # Per-group throughputs must sum to the total (the router loses
  # nothing), and the barrier run must actually execute Global commands.
  split_bad=$(jq '[.points[]
                   | select((([.group_throughputs_rps[]] | add)
                             - .throughput_rps | fabs)
                            > 0.01 * .throughput_rps)] | length' "$bench6_file")
  globals=$(jq '.barrier.globals_executed' "$bench6_file")
  echo "bench006 smoke: $pts points, $globals globals through the barrier"
  [ "$pts" -eq 6 ] || { echo "FAIL: expected 6 multi-group points" >&2; exit 1; }
  [ "$bad" -eq 0 ] || { echo "FAIL: non-positive throughput in bench006 smoke" >&2; exit 1; }
  [ "$split_bad" -eq 0 ] || { echo "FAIL: per-group throughputs do not sum to the total" >&2; exit 1; }
  [ "$globals" -gt 0 ] || { echo "FAIL: barrier run executed no Global commands" >&2; exit 1; }
else
  [ -s "$bench6_file" ] || { echo "FAIL: $bench6_file empty" >&2; exit 1; }
  case "$(head -c1 "$bench6_file")" in
    '{') ;;
    *) echo "FAIL: $bench6_file does not look like JSON" >&2; exit 1 ;;
  esac
  echo "bench006 smoke: jq not installed, checked file is non-empty JSON"
fi

echo "== bench006 committed results gate =="
bench6_committed="bench/BENCH_006.json"
[ -f "$bench6_committed" ] || { echo "FAIL: $bench6_committed missing" >&2; exit 1; }
if command -v jq >/dev/null 2>&1; then
  jq empty "$bench6_committed"
  quick=$(jq '.quick' "$bench6_committed")
  pts=$(jq '.points | length' "$bench6_committed")
  schema_bad=$(jq '[.points[] | select((.groups? and .cores?
                    and .throughput_rps? and .speedup_vs_g1?
                    and .group_throughputs_rps?) | not)] | length' \
               "$bench6_committed")
  # The tentpole's acceptance gate: sharding the ordering path over 4
  # groups must at least double single-group throughput at 24 cores
  # (the single group is NIC-bound at its one leader; each extra group
  # adds another leader NIC to the budget).
  scale_ok=$(jq '[.points[] | select(.groups == 4 and .cores == 24
                  and .speedup_vs_g1 >= 2)] | length >= 1' "$bench6_committed")
  globals=$(jq '.barrier.globals_executed' "$bench6_committed")
  echo "bench006 committed: $pts points, 4-group@24-core >= 2x: $scale_ok, $globals globals"
  [ "$quick" = "false" ] || { echo "FAIL: committed bench006 was a --quick run" >&2; exit 1; }
  [ "$pts" -ge 6 ] || { echo "FAIL: expected >= 6 committed bench006 points" >&2; exit 1; }
  [ "$schema_bad" -eq 0 ] || { echo "FAIL: bench006 point missing required fields" >&2; exit 1; }
  [ "$scale_ok" = "true" ] || { echo "FAIL: 4 groups at 24 cores below 2x single-group throughput" >&2; exit 1; }
  [ "$globals" -gt 0 ] || { echo "FAIL: committed barrier run executed no Global commands" >&2; exit 1; }
else
  [ -s "$bench6_committed" ] || { echo "FAIL: $bench6_committed empty" >&2; exit 1; }
  echo "bench006 committed: jq not installed, checked file is non-empty"
fi

echo "== bench007 smoke (quick) =="
dune exec bench/main.exe -- bench007 --quick --bench007-out "$bench7_file"

if command -v jq >/dev/null 2>&1; then
  jq empty "$bench7_file"
  pts=$(jq '.sim.points | length' "$bench7_file")
  bad=$(jq '[.sim.points[] | select(.nosteal_rps <= 0 or .steal_rps <= 0)]
            | length' "$bench7_file")
  # The tentpole's claims hold even on the quick run: stealing recovers
  # the skew-0.9 convoy, and the lock-free spine collapses the summed
  # Blocked (lock-acquisition) time of the live replica threads.
  speedup_ok=$(jq '.sim.steal_speedup_hot >= 1.5' "$bench7_file")
  blocked_ok=$(jq '.live.blocked_reduction >= 5' "$bench7_file")
  live_ok=$(jq '.live.mutex.completed > 0 and .live.lockfree.completed > 0' \
            "$bench7_file")
  echo "bench007 smoke: $pts skew points, steal>=1.5x: $speedup_ok, blocked/5: $blocked_ok"
  [ "$pts" -eq 3 ] || { echo "FAIL: expected 3 skew points" >&2; exit 1; }
  [ "$bad" -eq 0 ] || { echo "FAIL: non-positive throughput in bench007 smoke" >&2; exit 1; }
  [ "$speedup_ok" = "true" ] || { echo "FAIL: steal speedup at skew 0.9 below 1.5x" >&2; exit 1; }
  [ "$blocked_ok" = "true" ] || { echo "FAIL: lock-free spine blocked-time reduction below 5x" >&2; exit 1; }
  [ "$live_ok" = "true" ] || { echo "FAIL: a live bench007 section completed no requests" >&2; exit 1; }
else
  [ -s "$bench7_file" ] || { echo "FAIL: $bench7_file empty" >&2; exit 1; }
  case "$(head -c1 "$bench7_file")" in
    '{') ;;
    *) echo "FAIL: $bench7_file does not look like JSON" >&2; exit 1 ;;
  esac
  echo "bench007 smoke: jq not installed, checked file is non-empty JSON"
fi

echo "== bench007 committed results gate =="
bench7_committed="bench/BENCH_007.json"
[ -f "$bench7_committed" ] || { echo "FAIL: $bench7_committed missing" >&2; exit 1; }
if command -v jq >/dev/null 2>&1; then
  jq empty "$bench7_committed"
  quick=$(jq '.quick' "$bench7_committed")
  pts=$(jq '.sim.points | length' "$bench7_committed")
  schema_bad=$(jq '[.sim.points[] | select((.skew != null and .nosteal_rps?
                    and .steal_rps? and .speedup? and (.steals != null))
                    | not)] | length' "$bench7_committed")
  speedup_ok=$(jq '.sim.steal_speedup_hot >= 1.5' "$bench7_committed")
  steals_ok=$(jq '[.sim.points[] | select(.skew >= 0.5 and .steals > 0)]
               | length >= 1' "$bench7_committed")
  blocked_ok=$(jq '.live.blocked_reduction >= 5' "$bench7_committed")
  echo "bench007 committed: $pts points, steal>=1.5x: $speedup_ok, blocked/5: $blocked_ok"
  [ "$quick" = "false" ] || { echo "FAIL: committed bench007 was a --quick run" >&2; exit 1; }
  [ "$pts" -eq 3 ] || { echo "FAIL: expected 3 committed skew points" >&2; exit 1; }
  [ "$schema_bad" -eq 0 ] || { echo "FAIL: bench007 point missing required fields" >&2; exit 1; }
  [ "$speedup_ok" = "true" ] || { echo "FAIL: committed steal speedup below 1.5x" >&2; exit 1; }
  [ "$steals_ok" = "true" ] || { echo "FAIL: no skewed committed point recorded steals" >&2; exit 1; }
  [ "$blocked_ok" = "true" ] || { echo "FAIL: committed blocked-time reduction below 5x" >&2; exit 1; }
else
  [ -s "$bench7_committed" ] || { echo "FAIL: $bench7_committed empty" >&2; exit 1; }
  echo "bench007 committed: jq not installed, checked file is non-empty"
fi

echo "== bench008 smoke (quick) =="
dune exec bench/main.exe -- bench008 --quick --bench008-out "$bench8_file"

if command -v jq >/dev/null 2>&1; then
  jq empty "$bench8_file"
  pts=$(jq '.points | length' "$bench8_file")
  bad=$(jq '[.points[] | select(.throughput_rps <= 0)] | length' "$bench8_file")
  # Read safety must hold on every swept point, and the read fast path
  # must beat the ordered-read baseline even on the quick run.
  safe_ok=$(jq '[.points[] | .safety_ok] | all' "$bench8_file")
  stale_bad=$(jq '[.points[] | select(.stale_answers != 0)] | length' "$bench8_file")
  speedup_ok=$(jq '.stale_speedup_95_g1 >= 5' "$bench8_file")
  echo "bench008 smoke: $pts points, safe: $safe_ok, stale>=5x: $speedup_ok"
  [ "$pts" -eq 12 ] || { echo "FAIL: expected 12 read-path points" >&2; exit 1; }
  [ "$bad" -eq 0 ] || { echo "FAIL: non-positive throughput in bench008 smoke" >&2; exit 1; }
  [ "$safe_ok" = "true" ] || { echo "FAIL: a bench008 smoke point violated read safety" >&2; exit 1; }
  [ "$stale_bad" -eq 0 ] || { echo "FAIL: bench008 smoke served stale answers" >&2; exit 1; }
  [ "$speedup_ok" = "true" ] || { echo "FAIL: stale-read speedup below 5x at 95/5" >&2; exit 1; }
else
  [ -s "$bench8_file" ] || { echo "FAIL: $bench8_file empty" >&2; exit 1; }
  case "$(head -c1 "$bench8_file")" in
    '{') ;;
    *) echo "FAIL: $bench8_file does not look like JSON" >&2; exit 1 ;;
  esac
  echo "bench008 smoke: jq not installed, checked file is non-empty JSON"
fi

echo "== bench008 committed results gate =="
bench8_committed="bench/BENCH_008.json"
[ -f "$bench8_committed" ] || { echo "FAIL: $bench8_committed missing" >&2; exit 1; }
if command -v jq >/dev/null 2>&1; then
  jq empty "$bench8_committed"
  quick=$(jq '.quick' "$bench8_committed")
  pts=$(jq '.points | length' "$bench8_committed")
  schema_bad=$(jq '[.points[] | select(((.read_ratio != null) and (.groups != null)
                    and .mode? and .throughput_rps? and (.reads_rps != null)
                    and (.read_rejects != null) and (.stale_answers != null)
                    and (.safety_ok != null)) | not)] | length' \
               "$bench8_committed")
  # The tentpole's acceptance gate: at 95/5 the bounded-staleness fast
  # path must serve >= 5x the ordered-read baseline on one group.
  speedup_ok=$(jq '.stale_speedup_95_g1 >= 5' "$bench8_committed")
  safe_ok=$(jq '([.points[] | .safety_ok] | all)
                and ([.points[] | select(.stale_answers != 0)] | length == 0)' \
            "$bench8_committed")
  # Goldens gate: lease = false is byte-for-byte the seed's all-write
  # path, whatever the read ratio — so the two ordered baselines of each
  # group count (95/5 and 50/50) must report bit-identical throughput.
  golden_ok=$(jq '[.points[] | select(.mode == "ordered")]
                  | group_by(.groups)
                  | [.[] | ([.[] | .throughput_rps] | unique | length == 1)]
                  | all' "$bench8_committed")
  lin_ok=$(jq '[.points[] | select(.mode == "lease" and .reads_rps <= 0)]
               | length == 0' "$bench8_committed")
  echo "bench008 committed: $pts points, stale>=5x: $speedup_ok, safe: $safe_ok, lease-off golden: $golden_ok"
  [ "$quick" = "false" ] || { echo "FAIL: committed bench008 was a --quick run" >&2; exit 1; }
  [ "$pts" -eq 12 ] || { echo "FAIL: expected 12 committed bench008 points" >&2; exit 1; }
  [ "$schema_bad" -eq 0 ] || { echo "FAIL: bench008 point missing required fields" >&2; exit 1; }
  [ "$speedup_ok" = "true" ] || { echo "FAIL: committed stale-read speedup below 5x at 95/5" >&2; exit 1; }
  [ "$safe_ok" = "true" ] || { echo "FAIL: a committed bench008 point violated read safety" >&2; exit 1; }
  [ "$golden_ok" = "true" ] || { echo "FAIL: lease-off ordered baselines diverge (golden pin broken)" >&2; exit 1; }
  [ "$lin_ok" = "true" ] || { echo "FAIL: a lease point served no fast-path reads" >&2; exit 1; }
else
  [ -s "$bench8_committed" ] || { echo "FAIL: $bench8_committed empty" >&2; exit 1; }
  echo "bench008 committed: jq not installed, checked file is non-empty"
fi

echo "== bench009 smoke (quick) =="
dune exec bench/main.exe -- bench009 --quick --bench009-out "$bench9_file"

if command -v jq >/dev/null 2>&1; then
  jq empty "$bench9_file"
  pts=$(jq '.points | length' "$bench9_file")
  bad=$(jq '[.points[] | select(.throughput_rps <= 0)] | length' "$bench9_file")
  # Even on the quick run: speculation must collapse the commit->execute
  # gap, the spec-off arms must run zero speculation machinery (golden
  # pin), and the chaos-reorder soak must abort frames, stay safe and
  # reproduce bit-identically.
  safe_ok=$(jq '[.points[] | .safety_ok] | all' "$bench9_file")
  off_clean=$(jq '[.points[] | select(.speculate == false
                   and (.spec_dispatched + .spec_confirmed + .spec_aborted) != 0)]
                  | length' "$bench9_file")
  speedup_ok=$(jq '.ce_speedup_skew09_g1 >= 2' "$bench9_file")
  chaos_ok=$(jq '.chaos.spec_aborted > 0 and .chaos.safety_ok
                 and .chaos.deterministic' "$bench9_file")
  echo "bench009 smoke: $pts points, ce>=2x: $speedup_ok, chaos ok: $chaos_ok"
  [ "$pts" -eq 8 ] || { echo "FAIL: expected 8 speculation points" >&2; exit 1; }
  [ "$bad" -eq 0 ] || { echo "FAIL: non-positive throughput in bench009 smoke" >&2; exit 1; }
  [ "$safe_ok" = "true" ] || { echo "FAIL: a bench009 smoke point violated safety" >&2; exit 1; }
  [ "$off_clean" -eq 0 ] || { echo "FAIL: spec-off point ran speculation machinery (golden pin broken)" >&2; exit 1; }
  [ "$speedup_ok" = "true" ] || { echo "FAIL: commit->execute speedup below 2x at skew 0.9" >&2; exit 1; }
  [ "$chaos_ok" = "true" ] || { echo "FAIL: bench009 chaos soak aborted nothing, was unsafe or non-deterministic" >&2; exit 1; }
else
  [ -s "$bench9_file" ] || { echo "FAIL: $bench9_file empty" >&2; exit 1; }
  case "$(head -c1 "$bench9_file")" in
    '{') ;;
    *) echo "FAIL: $bench9_file does not look like JSON" >&2; exit 1 ;;
  esac
  echo "bench009 smoke: jq not installed, checked file is non-empty JSON"
fi

echo "== bench009 committed results gate =="
bench9_committed="bench/BENCH_009.json"
[ -f "$bench9_committed" ] || { echo "FAIL: $bench9_committed missing" >&2; exit 1; }
if command -v jq >/dev/null 2>&1; then
  jq empty "$bench9_committed"
  quick=$(jq '.quick' "$bench9_committed")
  pts=$(jq '.points | length' "$bench9_committed")
  schema_bad=$(jq '[.points[] | select(((.skew != null) and (.groups != null)
                    and (.speculate != null) and .throughput_rps?
                    and (.commit_exec_latency_s != null)
                    and (.spec_dispatched != null) and (.spec_confirmed != null)
                    and (.spec_aborted != null) and (.safety_ok != null))
                    | not)] | length' "$bench9_committed")
  # The tentpole's acceptance gate: speculation must at least halve the
  # commit->execute latency at skew 0.9 on one group, every point must
  # end safe, the spec-on arms must actually confirm speculations, and
  # the chaos-reorder soak must roll frames back, stay safe and
  # reproduce bit-identically across its two runs.
  speedup_ok=$(jq '.ce_speedup_skew09_g1 >= 2' "$bench9_committed")
  safe_ok=$(jq '[.points[] | .safety_ok] | all' "$bench9_committed")
  off_clean=$(jq '[.points[] | select(.speculate == false
                   and (.spec_dispatched + .spec_confirmed + .spec_aborted) != 0)]
                  | length' "$bench9_committed")
  on_live=$(jq '[.points[] | select(.speculate and .spec_confirmed <= 0)]
                | length' "$bench9_committed")
  chaos_ok=$(jq '.chaos.spec_aborted > 0 and .chaos.safety_ok
                 and .chaos.deterministic' "$bench9_committed")
  echo "bench009 committed: $pts points, ce>=2x: $speedup_ok, safe: $safe_ok, chaos ok: $chaos_ok"
  [ "$quick" = "false" ] || { echo "FAIL: committed bench009 was a --quick run" >&2; exit 1; }
  [ "$pts" -eq 8 ] || { echo "FAIL: expected 8 committed bench009 points" >&2; exit 1; }
  [ "$schema_bad" -eq 0 ] || { echo "FAIL: bench009 point missing required fields" >&2; exit 1; }
  [ "$speedup_ok" = "true" ] || { echo "FAIL: committed commit->execute speedup below 2x at skew 0.9" >&2; exit 1; }
  [ "$safe_ok" = "true" ] || { echo "FAIL: a committed bench009 point violated safety" >&2; exit 1; }
  [ "$off_clean" -eq 0 ] || { echo "FAIL: committed spec-off point ran speculation machinery" >&2; exit 1; }
  [ "$on_live" -eq 0 ] || { echo "FAIL: a committed spec-on point confirmed no speculations" >&2; exit 1; }
  [ "$chaos_ok" = "true" ] || { echo "FAIL: committed bench009 chaos soak aborted nothing, was unsafe or non-deterministic" >&2; exit 1; }
else
  [ -s "$bench9_committed" ] || { echo "FAIL: $bench9_committed empty" >&2; exit 1; }
  echo "bench009 committed: jq not installed, checked file is non-empty"
fi

echo "== bench010 smoke (quick) =="
dune exec bench/main.exe -- bench010 --quick --bench010-out "$bench10_file"

if command -v jq >/dev/null 2>&1; then
  jq empty "$bench10_file"
  # Even on the quick run: the full grow/shrink schedule must complete
  # (epoch 6), every arm must stay linearizable, both chaos arms must
  # rerun bit-identically, and the live walk must end back at three
  # voters with the joiner bootstrapped from a snapshot, the removed
  # nodes fenced and the exactly-once audit intact. (The >= 0.9x
  # throughput-ratio gate applies to the committed full run only — a
  # sub-second quick run is mostly reconfiguration window.)
  sim_ok=$(jq '[.sim.static.safety_ok, .sim.reconfig.safety_ok,
                .sim.crash_join.safety_ok, .sim.runs_identical,
                .sim.crash_runs_identical] | all' "$bench10_file")
  sched_ok=$(jq '.sim.reconfig.final_epoch == 6
                 and .sim.crash_join.final_epoch >= 2' "$bench10_file")
  live_ok=$(jq '.live.final_voters == 3 and .live.joiner_snapshot_installs >= 1
                and .live.removed_fenced and .live.exactly_once_ok
                and .live.completed > 0' "$bench10_file")
  echo "bench010 smoke: sim ok: $sim_ok, schedule ok: $sched_ok, live ok: $live_ok"
  [ "$sim_ok" = "true" ] || { echo "FAIL: bench010 smoke sim arm unsafe or non-deterministic" >&2; exit 1; }
  [ "$sched_ok" = "true" ] || { echo "FAIL: bench010 smoke reconfig schedule did not complete" >&2; exit 1; }
  [ "$live_ok" = "true" ] || { echo "FAIL: bench010 smoke live membership walk failed" >&2; exit 1; }
else
  [ -s "$bench10_file" ] || { echo "FAIL: $bench10_file empty" >&2; exit 1; }
  case "$(head -c1 "$bench10_file")" in
    '{') ;;
    *) echo "FAIL: $bench10_file does not look like JSON" >&2; exit 1 ;;
  esac
  echo "bench010 smoke: jq not installed, checked file is non-empty JSON"
fi

echo "== bench010 committed results gate =="
bench10_committed="bench/BENCH_010.json"
[ -f "$bench10_committed" ] || { echo "FAIL: $bench10_committed missing" >&2; exit 1; }
if command -v jq >/dev/null 2>&1; then
  jq empty "$bench10_committed"
  quick=$(jq '.quick' "$bench10_committed")
  schema_bad=$(jq '[.sim.static, .sim.reconfig, .sim.crash_join]
                   | [.[] | select(((.throughput_rps != null)
                      and (.completed != null) and (.final_epoch != null)
                      and (.reconfigs_applied != null)
                      and (.view_changes != null) and (.safety_ok != null))
                      | not)] | length' "$bench10_committed")
  # The acceptance gates: zero safety violations across the 3->5->3
  # walk, the schedule completes (six consensus-ordered epochs), the
  # reconfig arm keeps >= 0.9x the static baseline's throughput, both
  # chaos arms rerun bit-identically, and on the live runtime the
  # joiner reaches the voting set via snapshot-based state transfer
  # while removed nodes fence themselves and no call is lost or
  # double-executed.
  sim_ok=$(jq '[.sim.static.safety_ok, .sim.reconfig.safety_ok,
                .sim.crash_join.safety_ok, .sim.runs_identical,
                .sim.crash_runs_identical] | all' "$bench10_committed")
  sched_ok=$(jq '.sim.reconfig.final_epoch == 6
                 and .sim.crash_join.final_epoch >= 2' "$bench10_committed")
  ratio_ok=$(jq '.sim.throughput_ratio >= 0.9' "$bench10_committed")
  live_ok=$(jq '.live.final_voters == 3 and .live.joiner_snapshot_installs >= 1
                and .live.reconfigs_applied >= 6 and .live.removed_fenced
                and .live.exactly_once_ok' "$bench10_committed")
  echo "bench010 committed: sim ok: $sim_ok, schedule ok: $sched_ok, ratio ok: $ratio_ok, live ok: $live_ok"
  [ "$quick" = "false" ] || { echo "FAIL: committed bench010 was a --quick run" >&2; exit 1; }
  [ "$schema_bad" -eq 0 ] || { echo "FAIL: bench010 arm missing required fields" >&2; exit 1; }
  [ "$sim_ok" = "true" ] || { echo "FAIL: a committed bench010 arm violated safety or diverged across reruns" >&2; exit 1; }
  [ "$sched_ok" = "true" ] || { echo "FAIL: committed bench010 reconfig schedule did not complete" >&2; exit 1; }
  [ "$ratio_ok" = "true" ] || { echo "FAIL: committed reconfig throughput below 0.9x the static baseline" >&2; exit 1; }
  [ "$live_ok" = "true" ] || { echo "FAIL: committed bench010 live membership walk failed" >&2; exit 1; }
else
  [ -s "$bench10_committed" ] || { echo "FAIL: $bench10_committed empty" >&2; exit 1; }
  echo "bench010 committed: jq not installed, checked file is non-empty"
fi

echo "== docs metrics gate =="
# Every metric name the code can register must be documented: a
# quoted msmr_* string in lib/ that never appears in
# docs/OBSERVABILITY.md fails the build (names there are written out in
# full, never brace-compressed, exactly so this check can be literal).
missing=0
for m in $(grep -rhoE '"msmr_[a-z0-9_]+"' lib/ | tr -d '"' | sort -u); do
  grep -q "$m" docs/OBSERVABILITY.md \
    || { echo "FAIL: metric $m not documented in docs/OBSERVABILITY.md" >&2; missing=1; }
done
[ "$missing" -eq 0 ] || exit 1
echo "docs: $(grep -rhoE '"msmr_[a-z0-9_]+"' lib/ | sort -u | wc -l) metric names all documented"

echo "== verify OK =="
